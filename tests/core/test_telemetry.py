"""Unit tests for the telemetry layer (counters, timers, spans, manifest)."""

from __future__ import annotations

import json

import pytest

from repro.core import telemetry
from repro.core.errors import ConfigError
from repro.core.telemetry import (
    SCHEMA,
    Telemetry,
    TimerStat,
    capture,
    load_manifest,
    render_manifest,
    validate_manifest,
    write_manifest,
)


class FakeClock:
    """Deterministic clock: each read advances by ``step`` seconds."""

    def __init__(self, step: float = 1.0) -> None:
        self.now = 0.0
        self.step = step

    def __call__(self) -> float:
        value = self.now
        self.now += self.step
        return value


class TestCounters:
    def test_count_creates_and_accumulates(self):
        tel = Telemetry(clock=FakeClock())
        tel.count("a")
        tel.count("a", 4)
        tel.count("b", 0)
        assert tel.counters == {"a": 5, "b": 0}

    def test_count_many_folds_batch(self):
        tel = Telemetry(clock=FakeClock())
        tel.count("a", 2)
        tel.count_many({"a": 3, "b": 7})
        assert tel.counters == {"a": 5, "b": 7}


class TestTimers:
    def test_timer_context_uses_injected_clock(self):
        clock = FakeClock(step=0.5)
        tel = Telemetry(clock=clock)
        with tel.timer("t"):
            pass
        stat = tel.timers["t"]
        # One read at start, one at stop: elapsed == one step.
        assert stat.count == 1
        assert stat.total_s == pytest.approx(0.5)
        assert stat.min_s == pytest.approx(0.5)
        assert stat.max_s == pytest.approx(0.5)

    def test_record_timer_tracks_min_max(self):
        tel = Telemetry(clock=FakeClock())
        tel.record_timer("t", 2.0)
        tel.record_timer("t", 1.0)
        tel.record_timer("t", 3.0)
        assert tel.timers["t"].as_tuple() == (3, 6.0, 1.0, 3.0)

    def test_negative_elapsed_clamped(self):
        tel = Telemetry(clock=FakeClock())
        tel.record_timer("t", -0.25)
        assert tel.timers["t"].as_tuple() == (1, 0.0, 0.0, 0.0)

    def test_timer_records_on_exception(self):
        tel = Telemetry(clock=FakeClock())
        with pytest.raises(RuntimeError):
            with tel.timer("t"):
                raise RuntimeError("boom")
        assert tel.timers["t"].count == 1

    def test_merge_skips_empty_and_keeps_extrema(self):
        stat = TimerStat()
        stat.merge(0, 99.0, 0.0, 99.0)  # no-op: count 0
        assert stat.count == 0
        stat.record(2.0)
        stat.merge(2, 4.0, 0.5, 3.5)
        assert stat.as_tuple() == (3, 6.0, 0.5, 3.5)

    def test_empty_timer_to_dict_has_zero_min(self):
        assert TimerStat().to_dict() == {
            "count": 0, "total_s": 0.0, "min_s": 0.0, "max_s": 0.0,
        }


class TestSpans:
    def test_nesting_shape(self):
        tel = Telemetry(clock=FakeClock())
        with tel.span("outer"):
            with tel.span("inner-1"):
                pass
            with tel.span("inner-2"):
                pass
        manifest = tel.manifest()
        (outer,) = manifest["spans"]
        assert outer["name"] == "outer"
        assert [c["name"] for c in outer["children"]] == [
            "inner-1", "inner-2",
        ]
        assert tel.span_depth == 0

    def test_span_exits_cleanly_on_exception(self):
        tel = Telemetry(clock=FakeClock())
        with pytest.raises(ValueError):
            with tel.span("outer"):
                raise ValueError("boom")
        assert tel.span_depth == 0
        with tel.span("after"):
            pass
        assert [n["name"] for n in tel.manifest()["spans"]] == [
            "outer", "after",
        ]

    def test_span_elapsed_from_injected_clock(self):
        clock = FakeClock(step=1.0)
        tel = Telemetry(clock=clock)
        with tel.span("s"):
            pass
        (node,) = tel.manifest()["spans"]
        assert node["elapsed_s"] == pytest.approx(1.0)


class TestActivation:
    def test_off_by_default(self):
        assert telemetry.active() is None
        assert not telemetry.enabled()
        # Module-level helpers are silent no-ops when off.
        telemetry.count("x")
        with telemetry.timer("t"):
            pass
        with telemetry.span("s"):
            pass

    def test_capture_installs_and_restores(self):
        with capture() as tel:
            assert telemetry.active() is tel
            telemetry.count("hits", 3)
            assert tel.counters["hits"] == 3
        assert telemetry.active() is None

    def test_nested_capture_shadows_without_folding(self):
        with capture() as outer:
            telemetry.count("outer")
            with capture() as inner:
                assert telemetry.active() is inner
                telemetry.count("inner")
            assert telemetry.active() is outer
            assert inner.counters == {"inner": 1}
            assert outer.counters == {"outer": 1}

    def test_capture_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with capture():
                raise RuntimeError("boom")
        assert telemetry.active() is None


class TestDrainAbsorb:
    def test_round_trip_is_lossless(self):
        clock = FakeClock()
        worker = Telemetry(clock=clock)
        worker.count("a", 2)
        worker.record_timer("t", 1.5)
        worker.record_timer("t", 0.5)

        parent = Telemetry(clock=FakeClock())
        parent.count("a", 1)
        parent.record_timer("t", 1.0)
        parent.absorb(*worker.drain())

        assert parent.counters == {"a": 3}
        assert parent.timers["t"].as_tuple() == (3, 3.0, 0.5, 1.5)

    def test_drain_is_picklable_plain_data(self):
        worker = Telemetry(clock=FakeClock())
        worker.count("a")
        worker.record_timer("t", 1.0)
        counters, timers = worker.drain()
        # Must survive a JSON round-trip (superset of pickle needs).
        assert json.loads(json.dumps([counters, timers])) is not None


class TestManifest:
    def test_manifest_keys_sorted_and_valid(self):
        tel = Telemetry(clock=FakeClock())
        tel.count("z", 1)
        tel.count("a", 2)
        tel.record_timer("t", 1.0)
        with tel.span("phase"):
            pass
        manifest = tel.manifest(command="run", argv=["run", "fig9"])
        assert list(manifest["counters"]) == ["a", "z"]
        assert manifest["schema"] == SCHEMA
        assert manifest["command"] == "run"
        assert validate_manifest(manifest) == []

    def test_json_round_trip_preserves_manifest(self, tmp_path):
        tel = Telemetry(clock=FakeClock())
        tel.count("a", 5)
        tel.record_timer("t", 0.25)
        with tel.span("outer"):
            with tel.span("inner"):
                pass
        manifest = tel.manifest(command="run")
        path = tmp_path / "tel.json"
        write_manifest(manifest, path)
        assert load_manifest(path) == manifest

    def test_load_rejects_non_object(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("[1, 2, 3]\n")
        with pytest.raises(ConfigError):
            load_manifest(path)


class TestValidation:
    def _valid(self):
        return Telemetry(clock=FakeClock()).manifest(command="run")

    def test_empty_capture_is_valid(self):
        assert validate_manifest(self._valid()) == []

    @pytest.mark.parametrize(
        "mutate, fragment",
        [
            (lambda m: m.update(schema="bogus/9"), "schema"),
            (lambda m: m.update(command=7), "command"),
            (lambda m: m.update(argv=[1]), "argv"),
            (lambda m: m.update(elapsed_s=-1.0), "elapsed_s"),
            (lambda m: m.update(counters={"a": 1.5}), "counters"),
            (lambda m: m.update(counters={"a": True}), "counters"),
            (lambda m: m.update(counters="no"), "counters"),
            (
                lambda m: m.update(timers={"t": {
                    "count": 1, "total_s": 1.0, "min_s": 2.0, "max_s": 1.0,
                }}),
                "min_s",
            ),
            (
                lambda m: m.update(timers={"t": {
                    "count": -1, "total_s": 0.0, "min_s": 0.0, "max_s": 0.0,
                }}),
                "count",
            ),
            (lambda m: m.update(spans=[{"name": ""}]), "span"),
            (lambda m: m.update(spans="no"), "spans"),
        ],
    )
    def test_rejects_malformed(self, mutate, fragment):
        manifest = self._valid()
        mutate(manifest)
        problems = validate_manifest(manifest)
        assert problems, f"expected a problem mentioning {fragment!r}"
        assert any(fragment in p for p in problems)

    def test_rejects_non_dict(self):
        assert validate_manifest([1]) == ["manifest must be a JSON object"]


class TestRendering:
    def test_render_mentions_everything(self):
        tel = Telemetry(clock=FakeClock())
        tel.count("alloc.placements", 12345)
        tel.record_timer("alloc.replay", 0.5)
        with tel.span("experiment.fig9"):
            with tel.span("replay"):
                pass
        text = render_manifest(tel.manifest(command="run"))
        assert "alloc.placements" in text
        assert "12,345" in text
        assert "alloc.replay" in text
        assert "experiment.fig9" in text
        assert "replay" in text

    def test_render_empty_capture(self):
        text = render_manifest(Telemetry(clock=FakeClock()).manifest())
        assert "(empty capture)" in text
