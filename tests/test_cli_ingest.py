"""CLI tests for ``repro trace ingest`` and ``--trace-backend``."""

import gzip
import json
import os

import pytest

from repro.allocation.ingest import BACKEND_ENV, bundled_sample_path
from repro.cli import main

ROW = (
    "vm-{i},sub,dep,{created},{deleted},55.0,12.0,40.0,"
    "Interactive,2,4"
)


def _table(tmp_path, n=8, name="table.csv"):
    lines = [
        ROW.format(i=i, created=3600 + 60 * i, deleted=9000 + 60 * i)
        for i in range(n)
    ]
    path = tmp_path / name
    path.write_text("\n".join(lines) + "\n")
    return path


class TestTraceIngest:
    def test_ingest_happy_path(self, tmp_path, capsys):
        path = _table(tmp_path)
        assert main(["trace", "ingest", str(path), "--digest"]) == 0
        out = capsys.readouterr().out
        assert "ingested 1/1 files" in out
        assert "table" in out

    def test_ingest_bundled_sample(self, capsys):
        code = main(
            ["trace", "ingest", str(bundled_sample_path()), "--digest"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "420" in out

    def test_report_files_written(self, tmp_path, capsys):
        path = _table(tmp_path)
        report_dir = tmp_path / "reports"
        code = main(
            ["trace", "ingest", str(path), "--report", str(report_dir)]
        )
        assert code == 0
        reports = list(report_dir.glob("*.ingest.json"))
        assert len(reports) == 1
        payload = json.loads(reports[0].read_text())
        assert payload["rows_kept"] == 8
        assert payload["schema"] == "azure-vmtable/1"

    def test_corrupt_file_quarantined(self, tmp_path, capsys):
        good = _table(tmp_path, name="good.csv")
        bad = tmp_path / "bad.csv.gz"
        bad.write_bytes(b"\x1f\x8b" + b"\x00" * 16)
        code = main(["trace", "ingest", str(bad), str(good)])
        assert code == 0  # one file survived
        captured = capsys.readouterr()
        assert "quarantined" in captured.err
        assert not bad.exists()
        assert (tmp_path / "quarantine" / "bad.csv.gz").exists()
        assert "ingested 1/2 files" in captured.out

    def test_all_corrupt_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.csv.gz"
        bad.write_bytes(b"\x1f\x8b" + b"\x00" * 16)
        assert main(["trace", "ingest", str(bad)]) == 2
        assert (tmp_path / "quarantine" / "bad.csv.gz").exists()

    def test_warm_registers_in_store(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv(
            "REPRO_TRACE_STORE_DIR", str(tmp_path / "store")
        )
        path = _table(tmp_path)
        assert main(["trace", "ingest", str(path), "--warm"]) == 0
        assert "miss" in capsys.readouterr().out
        assert main(["trace", "ingest", str(path), "--warm"]) == 0
        assert "hit" in capsys.readouterr().out

    def test_rebase_shifts_window(self, tmp_path, capsys):
        path = _table(tmp_path)
        assert main(["trace", "ingest", str(path), "--rebase"]) == 0
        out = capsys.readouterr().out
        assert "| 0.0" in out  # start h column rebased to zero

    def test_plain_trace_command_still_works(self, capsys):
        code = main(
            ["trace", "--seed", "3", "--vms", "40", "--days", "1"]
        )
        assert code == 0
        assert "full-node share" in capsys.readouterr().out


class TestTraceBackendFlag:
    def test_evaluate_with_azure_backend(self, capsys):
        code = main(
            ["--trace-backend", "azure", "evaluate", "--sku",
             "GreenSKU-Full"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "azure backend" in out
        assert "420 VMs" in out

    def test_evaluate_synthetic_unchanged(self, capsys):
        code = main(
            ["--trace-backend", "synthetic", "evaluate", "--vms", "60",
             "--days", "4", "--seed", "3"]
        )
        assert code == 0
        assert "seed 3" in capsys.readouterr().out

    def test_env_saved_and_restored(self, capsys):
        assert BACKEND_ENV not in os.environ
        main(["--trace-backend", "azure", "trace", "--seed", "1",
              "--vms", "30", "--days", "1"])
        assert BACKEND_ENV not in os.environ

    def test_env_value_restored(self, capsys, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "synthetic")
        main(["--trace-backend", "azure", "trace", "--seed", "1",
              "--vms", "30", "--days", "1"])
        assert os.environ[BACKEND_ENV] == "synthetic"

    def test_unknown_backend_rejected(self):
        with pytest.raises(SystemExit):
            main(["--trace-backend", "gcp", "list"])
