"""Run the executable examples embedded in module docstrings."""

import doctest

import pytest

import repro.allocation.packing
import repro.carbon.intensity
import repro.carbon.power
import repro.core.rng
import repro.core.tables
import repro.core.units
import repro.hardware.embodied
import repro.perf.pond
import repro.perf.queueing
import repro.reliability.afr
import repro.reliability.maintenance

MODULES = [
    repro.allocation.packing,
    repro.carbon.intensity,
    repro.carbon.power,
    repro.core.rng,
    repro.core.tables,
    repro.core.units,
    repro.hardware.embodied,
    repro.perf.pond,
    repro.perf.queueing,
    repro.reliability.afr,
    repro.reliability.maintenance,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failures"
