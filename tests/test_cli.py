"""CLI tests."""

import pytest

from repro.cli import main


class TestList:
    def test_lists_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig11" in out
        assert "table4" in out


class TestRun:
    def test_run_table4(self, capsys):
        assert main(["run", "table4"]) == 0
        assert "GreenSKU-Full" in capsys.readouterr().out

    def test_run_table1(self, capsys):
        assert main(["run", "table1"]) == 0
        assert "Bergamo" in capsys.readouterr().out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "fig99"])


class TestPrice:
    def test_price_greensku(self, capsys):
        assert main(["price", "GreenSKU-Full"]) == 0
        out = capsys.readouterr().out
        assert "total/core" in out
        assert "128 cores" in out

    def test_price_with_intensity(self, capsys):
        assert main(["price", "Baseline", "--ci", "0.0"]) == 0
        out = capsys.readouterr().out
        assert "operational/core:         0.0" in out

    def test_unknown_sku_error(self, capsys):
        assert main(["price", "MegaSKU"]) == 2
        assert "unknown SKU" in capsys.readouterr().err


class TestSavings:
    def test_savings_table(self, capsys):
        assert main(["savings"]) == 0
        out = capsys.readouterr().out
        assert "GreenSKU-CXL" in out
        assert "Total Savings" in out


class TestEvaluate:
    def test_evaluate_small(self, capsys):
        code = main(
            ["evaluate", "--vms", "60", "--days", "4", "--seed", "3"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "cluster savings" in out


class TestTrace:
    def test_trace_roundtrip(self, capsys, tmp_path):
        out_file = tmp_path / "t.csv"
        code = main(
            ["trace", "--vms", "40", "--days", "2", "--out", str(out_file)]
        )
        assert code == 0
        assert out_file.exists()
        from repro.allocation.io import load_trace

        loaded = load_trace(out_file)
        assert len(loaded.vms) > 0
