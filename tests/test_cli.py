"""CLI tests."""

import pytest

from repro.cli import main


class TestList:
    def test_lists_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig11" in out
        assert "table4" in out


class TestRun:
    def test_run_table4(self, capsys):
        assert main(["run", "table4"]) == 0
        assert "GreenSKU-Full" in capsys.readouterr().out

    def test_run_table1(self, capsys):
        assert main(["run", "table1"]) == 0
        assert "Bergamo" in capsys.readouterr().out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "fig99"])


class TestPrice:
    def test_price_greensku(self, capsys):
        assert main(["price", "GreenSKU-Full"]) == 0
        out = capsys.readouterr().out
        assert "total/core" in out
        assert "128 cores" in out

    def test_price_with_intensity(self, capsys):
        assert main(["price", "Baseline", "--ci", "0.0"]) == 0
        out = capsys.readouterr().out
        assert "operational/core:         0.0" in out

    def test_unknown_sku_error(self, capsys):
        assert main(["price", "MegaSKU"]) == 2
        assert "unknown SKU" in capsys.readouterr().err


class TestSavings:
    def test_savings_table(self, capsys):
        assert main(["savings"]) == 0
        out = capsys.readouterr().out
        assert "GreenSKU-CXL" in out
        assert "Total Savings" in out


class TestEvaluate:
    def test_evaluate_small(self, capsys):
        code = main(
            ["evaluate", "--vms", "60", "--days", "4", "--seed", "3"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "cluster savings" in out


class TestTrace:
    def test_trace_roundtrip(self, capsys, tmp_path):
        out_file = tmp_path / "t.csv"
        code = main(
            ["trace", "--vms", "40", "--days", "2", "--out", str(out_file)]
        )
        assert code == 0
        assert out_file.exists()
        from repro.allocation.io import load_trace

        loaded = load_trace(out_file)
        assert len(loaded.vms) > 0


class TestTelemetryFlag:
    def test_writes_valid_manifest(self, capsys, tmp_path):
        from repro.core.telemetry import load_manifest, validate_manifest

        path = tmp_path / "tel.json"
        argv = [
            "--telemetry", str(path),
            "evaluate", "--vms", "60", "--days", "4", "--seed", "3",
        ]
        assert main(argv) == 0
        manifest = load_manifest(path)
        assert validate_manifest(manifest) == []
        assert manifest["command"] == "evaluate"
        assert manifest["argv"] == argv
        assert manifest["counters"]["alloc.replays"] >= 1
        assert manifest["counters"]["sizing.searches"] >= 1
        assert "alloc.replay" in manifest["timers"]

    def test_output_identical_with_and_without(self, capsys, tmp_path):
        argv = ["evaluate", "--vms", "60", "--days", "4", "--seed", "3"]
        assert main(argv) == 0
        plain = capsys.readouterr().out
        path = tmp_path / "tel.json"
        assert main(["--telemetry", str(path)] + argv) == 0
        instrumented = capsys.readouterr().out
        assert instrumented == plain

    def test_run_experiment_has_span(self, capsys, tmp_path):
        from repro.core.telemetry import load_manifest

        path = tmp_path / "tel.json"
        assert main(["--telemetry", str(path), "run", "table4"]) == 0
        manifest = load_manifest(path)
        assert [s["name"] for s in manifest["spans"]] == [
            "experiment.table4"
        ]

    def test_telemetry_off_leaves_no_sink(self):
        from repro.core import telemetry

        assert main(["run", "table4"]) == 0
        assert telemetry.active() is None


class TestResilienceFlags:
    def test_faulty_run_then_resume_is_bit_identical(self, capsys, tmp_path):
        from repro.core.telemetry import load_manifest

        journal = tmp_path / "journal"

        assert main(["run", "fig9"]) == 0
        clean_out = capsys.readouterr().out

        # Kill the worker for two tasks on their first attempt; retries
        # recover them and every task checkpoints to the journal.
        faulty_tel = tmp_path / "faulty.json"
        code = main([
            "--journal", str(journal),
            "--retries", "2",
            "--faults", "kill=1;4 attempts=1",
            "--telemetry", str(faulty_tel),
            "run", "fig9",
        ])
        assert code == 0
        assert capsys.readouterr().out == clean_out
        counters = load_manifest(faulty_tel)["counters"]
        assert counters["resilience.retries"] == 2
        assert counters["resilience.checkpointed"] == 12

        # --resume alone: every task is a journal hit, output identical.
        resume_tel = tmp_path / "resume.json"
        code = main([
            "--journal", str(journal),
            "--telemetry", str(resume_tel),
            "run", "fig9",
        ])
        assert code == 0
        assert capsys.readouterr().out == clean_out
        counters = load_manifest(resume_tel)["counters"]
        assert counters["resilience.resumed"] == 12
        assert "resilience.checkpointed" not in counters

    def test_policy_cleared_after_main(self):
        from repro.core import resilience

        assert main(["--retries", "1", "run", "table4"]) == 0
        assert resilience.active_policy() is None

    def test_bad_fault_spec_rejected(self, capsys):
        assert main(["--faults", "banana=1", "run", "table4"]) == 2
        assert "fault spec" in capsys.readouterr().err


class TestAllocEngine:
    def test_engine_flag_selects_backend(self, capsys, monkeypatch):
        import os

        from repro.allocation.cluster import ENGINE_ENV

        monkeypatch.delenv(ENGINE_ENV, raising=False)
        seen = {}
        orig = main.__globals__["_run_command"]

        def spy(args, argv):
            seen["engine"] = os.environ.get(ENGINE_ENV)
            return orig(args, argv)

        monkeypatch.setitem(main.__globals__, "_run_command", spy)
        assert main(["--alloc-engine", "soa", "run", "table4"]) == 0
        assert seen["engine"] == "soa"
        # The override is scoped to the invocation.
        assert ENGINE_ENV not in os.environ

    def test_env_restored_after_main(self, monkeypatch):
        import os

        from repro.allocation.cluster import ENGINE_ENV

        monkeypatch.setenv(ENGINE_ENV, "reference")
        assert main(["--alloc-engine", "soa", "run", "table4"]) == 0
        assert os.environ[ENGINE_ENV] == "reference"

    def test_unknown_engine_rejected(self):
        with pytest.raises(SystemExit):
            main(["--alloc-engine", "gpu", "run", "table4"])


class TestStats:
    def _manifest(self, tmp_path):
        path = tmp_path / "tel.json"
        main(
            ["--telemetry", str(path), "evaluate",
             "--vms", "60", "--days", "4", "--seed", "3"]
        )
        return path

    def test_pretty_prints_manifest(self, capsys, tmp_path):
        path = self._manifest(tmp_path)
        capsys.readouterr()
        assert main(["stats", str(path)]) == 0
        out = capsys.readouterr().out
        assert "telemetry manifest: evaluate" in out
        assert "alloc.replays" in out
        assert "timers:" in out

    def test_rejects_invalid_manifest(self, capsys, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"schema": "bogus/1"}\n')
        assert main(["stats", str(path)]) == 2
        assert "invalid manifest" in capsys.readouterr().err

    def test_rejects_missing_file(self, capsys, tmp_path):
        assert main(["stats", str(tmp_path / "nope.json")]) == 2
        assert "cannot read" in capsys.readouterr().err
