"""ServerSKU composition tests, including the five paper configurations."""

import pytest

from repro.core.errors import ConfigError
from repro.hardware import catalog
from repro.hardware.components import Category
from repro.hardware.sku import (
    ServerSKU,
    all_greenskus,
    baseline_gen1,
    baseline_gen2,
    baseline_gen3,
    baseline_resized,
    greensku_cxl,
    greensku_efficient,
    greensku_full,
    paper_skus,
)


class TestComposition:
    def test_requires_exactly_one_cpu(self):
        with pytest.raises(ConfigError):
            ServerSKU.build("no-cpu", [(catalog.DDR5_64GB, 4)])

    def test_two_cpus_rejected(self):
        with pytest.raises(ConfigError):
            ServerSKU.build(
                "two-cpus", [(catalog.BERGAMO, 1), (catalog.GENOA, 1)]
            )

    def test_negative_count_rejected(self):
        with pytest.raises(ConfigError):
            ServerSKU.build(
                "neg", [(catalog.BERGAMO, 1), (catalog.DDR5_64GB, -1)]
            )

    def test_cxl_dimms_need_controller_slots(self):
        with pytest.raises(ConfigError):
            ServerSKU.build(
                "slotless",
                [(catalog.BERGAMO, 1), (catalog.DDR4_32GB_REUSED, 8)],
            )

    def test_cxl_dimms_fit_when_slots_available(self):
        sku = ServerSKU.build(
            "slots",
            [
                (catalog.BERGAMO, 1),
                (catalog.DDR4_32GB_REUSED, 8),
                (catalog.CXL_CONTROLLER, 2),
            ],
        )
        assert sku.cxl_memory_gb == 256

    def test_form_factor_must_be_positive(self):
        with pytest.raises(ConfigError):
            ServerSKU.build(
                "flat", [(catalog.BERGAMO, 1)], form_factor_u=0
            )

    def test_with_name(self):
        sku = baseline_gen3().with_name("renamed")
        assert sku.name == "renamed"
        assert sku.cores == 80


class TestPaperConfigurations:
    """Table IV/VIII's SKU configurations, exactly."""

    def test_baseline(self):
        sku = baseline_gen3()
        assert sku.cores == 80
        assert sku.local_memory_gb == 12 * 64
        assert sku.cxl_memory_gb == 0
        assert sku.storage_tb == pytest.approx(12.0)
        assert sku.generation == 3

    def test_baseline_memory_per_core_is_9_6(self):
        assert baseline_gen3().memory_per_core == pytest.approx(9.6)

    def test_baseline_resized(self):
        sku = baseline_resized()
        assert sku.local_memory_gb == 10 * 64
        assert sku.memory_per_core == pytest.approx(8.0)

    def test_efficient(self):
        sku = greensku_efficient()
        assert sku.cores == 128
        assert sku.local_memory_gb == 12 * 96
        assert sku.storage_tb == pytest.approx(20.0)
        assert sku.generation == 0

    def test_cxl(self):
        sku = greensku_cxl()
        assert sku.local_memory_gb == 12 * 64
        assert sku.cxl_memory_gb == 8 * 32
        assert sku.memory_gb == 1024
        assert sku.storage_tb == pytest.approx(20.0)

    def test_cxl_memory_per_core_is_8(self):
        # Fig. 9 discussion: GreenSKU memory:core ratio is 8 (vs 9.6).
        assert greensku_cxl().memory_per_core == pytest.approx(8.0)

    def test_cxl_fraction_is_25pct(self):
        # GreenSKU-CXL replaces 25% of memory with CXL-attached DDR4
        # (Fig. 10's shaded region).
        assert greensku_cxl().cxl_fraction == pytest.approx(0.25)

    def test_full_dimm_and_ssd_counts(self):
        # Section V maintenance: 20 DIMMs and 14 SSDs.
        sku = greensku_full()
        assert sku.dimm_count == 20
        assert sku.ssd_count == 14

    def test_full_storage(self):
        assert greensku_full().storage_tb == pytest.approx(2 * 4 + 12 * 1)

    def test_baseline_dimm_and_ssd_counts(self):
        # Section V maintenance: 12 DIMMs and 6 SSDs.
        sku = baseline_gen3()
        assert sku.dimm_count == 12
        assert sku.ssd_count == 6

    def test_paper_skus_registry(self):
        skus = paper_skus()
        assert set(skus) == {
            "Baseline",
            "Baseline-Resized",
            "GreenSKU-Efficient",
            "GreenSKU-CXL",
            "GreenSKU-Full",
        }

    def test_all_greenskus_order(self):
        names = [s.name for s in all_greenskus()]
        assert names == [
            "GreenSKU-Efficient",
            "GreenSKU-CXL",
            "GreenSKU-Full",
        ]

    def test_appendix_variant_excludes_platform(self):
        sku = greensku_cxl(appendix_data=True)
        cats = sku.category_counts()
        assert Category.NIC not in cats
        assert Category.OTHER not in cats
        assert cats[Category.CXL] == 1

    def test_old_generations(self):
        assert baseline_gen1().generation == 1
        assert baseline_gen2().generation == 2
        assert baseline_gen1().cores == 64


class TestDerivedProperties:
    def test_bandwidth_per_core_bergamo_with_cxl(self):
        # Section III: Bergamo with CXL offers ~4.4 GB/s per core
        # (460 + 100 GB/s over 128 cores).
        sku = greensku_cxl()
        assert sku.mem_bw_per_core == pytest.approx(4.4, abs=0.05)

    def test_bandwidth_per_core_genoa(self):
        assert baseline_gen3().mem_bw_per_core == pytest.approx(5.75, abs=0.1)

    def test_iter_parts_skips_zero_counts(self):
        sku = ServerSKU.build(
            "zero", [(catalog.BERGAMO, 1), (catalog.DDR5_64GB, 0)]
        )
        names = [spec.name for spec, _ in sku.iter_parts()]
        assert "DDR5-64GB" not in names

    def test_category_counts(self):
        counts = baseline_gen3().category_counts()
        assert counts[Category.CPU] == 1
        assert counts[Category.DRAM] == 12
        assert counts[Category.SSD] == 6
