"""Data-center configuration tests."""

import pytest

from repro.core.errors import ConfigError
from repro.hardware.datacenter import (
    AZURE_REGION_CI,
    DataCenterConfig,
    appendix_config,
    region_config,
)


class TestDefaults:
    def test_table_vi_parameters(self):
        dc = DataCenterConfig()
        assert dc.lifetime_years == 6.0
        assert dc.carbon_intensity_kg_per_kwh == 0.1
        assert dc.derate_factor == 0.44

    def test_lifetime_hours(self):
        assert DataCenterConfig().lifetime_hours == 52_560.0

    def test_with_carbon_intensity(self):
        dc = DataCenterConfig().with_carbon_intensity(0.3)
        assert dc.carbon_intensity_kg_per_kwh == 0.3
        # Original unchanged (frozen dataclass).
        assert DataCenterConfig().carbon_intensity_kg_per_kwh == 0.1

    def test_with_lifetime(self):
        assert DataCenterConfig().with_lifetime(13).lifetime_years == 13


class TestValidation:
    def test_zero_lifetime_rejected(self):
        with pytest.raises(ConfigError):
            DataCenterConfig(lifetime_years=0)

    def test_negative_ci_rejected(self):
        with pytest.raises(ConfigError):
            DataCenterConfig(carbon_intensity_kg_per_kwh=-0.1)

    def test_pue_below_one_rejected(self):
        with pytest.raises(ConfigError):
            DataCenterConfig(pue=0.9)

    def test_derate_out_of_range_rejected(self):
        with pytest.raises(ConfigError):
            DataCenterConfig(derate_factor=1.5)

    def test_compute_share_out_of_range_rejected(self):
        with pytest.raises(ConfigError):
            DataCenterConfig(compute_share_of_dc=0.0)


class TestAppendixConfig:
    def test_no_pue_or_dc_overhead(self):
        # The worked example computes raw rack emissions.
        dc = appendix_config()
        assert dc.pue == 1.0
        assert dc.dc_embodied_per_rack_kg == 0.0


class TestRegions:
    def test_three_regions(self):
        assert len(AZURE_REGION_CI) == 3

    def test_region_ordering(self):
        # Fig. 11: us-south is the cleanest grid, europe-north dirtiest.
        assert (
            AZURE_REGION_CI["Azure-us-south"]
            < AZURE_REGION_CI["Azure-us-central"]
            < AZURE_REGION_CI["Azure-europe-north"]
        )

    def test_region_config(self):
        dc = region_config("Azure-us-south")
        assert dc.carbon_intensity_kg_per_kwh == AZURE_REGION_CI[
            "Azure-us-south"
        ]

    def test_unknown_region_rejected(self):
        with pytest.raises(ConfigError):
            region_config("Azure-moon-base")
