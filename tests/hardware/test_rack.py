"""Rack constraint tests, anchored on the Section V worked example."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.errors import CarbonModelError, ConfigError
from repro.hardware.rack import RackConfig


class TestDefaults:
    def test_table_vi_values(self):
        rack = RackConfig()
        assert rack.space_capacity_u == 32  # 42U minus 10U overhead
        assert rack.power_capacity_watts == 15000.0
        assert rack.overhead_power_watts == 500.0
        assert rack.overhead_embodied_kg == 500.0


class TestServersPerRack:
    def test_paper_example_space_bound(self):
        # Section V: P_s = 403 W -> power allows 35, space allows 16.
        rack = RackConfig()
        assert rack.servers_per_rack(403.0, 2) == 16
        assert rack.is_space_bound(403.0, 2)

    def test_power_bound_case(self):
        rack = RackConfig()
        # A 1.5 kW server: power allows floor(14500/1500) = 9 < 16.
        assert rack.servers_per_rack(1500.0, 2) == 9
        assert not rack.is_space_bound(1500.0, 2)

    def test_power_bound_math(self):
        rack = RackConfig()
        assert rack.servers_per_rack(403.0, 32) == 1

    def test_nothing_fits_raises(self):
        rack = RackConfig()
        with pytest.raises(CarbonModelError):
            rack.servers_per_rack(20_000.0, 2)

    def test_zero_power_rejected(self):
        with pytest.raises(ConfigError):
            RackConfig().servers_per_rack(0.0, 2)

    @given(st.floats(min_value=50, max_value=5000))
    def test_never_exceeds_power_capacity(self, power):
        rack = RackConfig()
        n = rack.servers_per_rack(power, 2)
        assert n * power <= rack.power_capacity_watts - rack.overhead_power_watts or (
            n == rack.space_capacity_u // 2
        )

    @given(st.floats(min_value=50, max_value=5000))
    def test_never_exceeds_space(self, power):
        rack = RackConfig()
        assert rack.servers_per_rack(power, 2) <= 16


class TestRackPower:
    def test_paper_example(self):
        # Section V: P_r = 16 * 403.3 + 500 ~ 6953 W.
        rack = RackConfig()
        assert rack.rack_power_watts(403.3, 16) == pytest.approx(6952.8)

    def test_invalid_config(self):
        with pytest.raises(ConfigError):
            RackConfig(power_capacity_watts=400.0, overhead_power_watts=500.0)

    def test_zero_space_rejected(self):
        with pytest.raises(ConfigError):
            RackConfig(space_capacity_u=0)
