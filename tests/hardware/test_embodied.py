"""Bottom-up embodied-carbon derivation tests."""

import pytest

from repro.core.errors import ConfigError
from repro.hardware.embodied import (
    board_embodied_kg,
    cpu_embodied_kg,
    derive_catalog_consistency,
    die_embodied_kg,
    dram_embodied_kg_per_gb,
    nand_embodied_kg_per_tb,
)


class TestDieEmbodied:
    def test_scales_with_area(self):
        one = die_embodied_kg(1.0, "N5")
        two = die_embodied_kg(2.0, "N5")
        assert two == pytest.approx(2 * one)

    def test_newer_nodes_cost_more_per_cm2(self):
        assert die_embodied_kg(1.0, "N3") > die_embodied_kg(1.0, "N5")
        assert die_embodied_kg(1.0, "N5") > die_embodied_kg(1.0, "N7")

    def test_yield_losses_raise_emissions(self):
        good = die_embodied_kg(1.0, "N5", fab_yield=1.0)
        lossy = die_embodied_kg(1.0, "N5", fab_yield=0.5)
        assert lossy == pytest.approx(2 * good)

    def test_unknown_node_rejected(self):
        with pytest.raises(ConfigError):
            die_embodied_kg(1.0, "N2")

    def test_zero_area_rejected(self):
        with pytest.raises(ConfigError):
            die_embodied_kg(0.0, "N5")


class TestCpuEmbodied:
    def test_io_die_adds(self):
        without = cpu_embodied_kg(7.0, "N5")
        with_io = cpu_embodied_kg(7.0, "N5", io_die_cm2=4.0)
        assert with_io > without

    def test_io_die_on_older_node_cheaper_per_cm2(self):
        io_n6 = cpu_embodied_kg(0.001, "N5", io_die_cm2=4.0, io_node="N6")
        io_n5 = cpu_embodied_kg(0.001, "N5", io_die_cm2=4.0, io_node="N5")
        assert io_n6 < io_n5


class TestDensities:
    def test_dram_near_table_v(self):
        assert dram_embodied_kg_per_gb() == pytest.approx(1.65, rel=0.05)

    def test_nand_near_table_v(self):
        assert nand_embodied_kg_per_tb() == pytest.approx(17.3, rel=0.05)

    def test_zero_density_rejected(self):
        with pytest.raises(ConfigError):
            dram_embodied_kg_per_gb(gb_per_cm2=0)
        with pytest.raises(ConfigError):
            nand_embodied_kg_per_tb(tb_per_cm2=0)


class TestBoard:
    def test_pcb_dominates_metal_per_kg(self):
        assert board_embodied_kg(1.0) > board_embodied_kg(0.0, 1.0)

    def test_negative_mass_rejected(self):
        with pytest.raises(ConfigError):
            board_embodied_kg(-1.0)


class TestCatalogConsistency:
    def test_all_derivations_within_5pct(self):
        """The Section II methodology reproduces Table V's values."""
        for key, derivation in derive_catalog_consistency().items():
            assert abs(derivation.relative_error) < 0.05, key
