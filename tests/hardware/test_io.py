"""SKU serialization tests."""

import pytest

from repro.core.errors import ConfigError
from repro.hardware.io import (
    load_sku,
    save_sku,
    sku_from_dict,
    sku_from_json,
    sku_to_dict,
    sku_to_json,
    spec_from_dict,
    spec_to_dict,
)
from repro.hardware import catalog
from repro.hardware.sku import baseline_gen3, greensku_full, paper_skus
from repro.carbon.model import CarbonModel


class TestSpecRoundTrip:
    @pytest.mark.parametrize(
        "spec",
        [
            catalog.BERGAMO,
            catalog.DDR5_64GB,
            catalog.DDR4_32GB_REUSED,
            catalog.SSD_1TB_REUSED,
            catalog.CXL_CONTROLLER,
            catalog.NIC_100G,
            catalog.PLATFORM_MISC,
        ],
        ids=lambda s: s.name,
    )
    def test_round_trip(self, spec):
        assert spec_from_dict(spec_to_dict(spec)) == spec

    def test_unknown_tag_rejected(self):
        data = spec_to_dict(catalog.NIC_100G)
        data["__type__"] = "gpu"
        with pytest.raises(ConfigError):
            spec_from_dict(data)

    def test_bad_payload_rejected(self):
        with pytest.raises(ConfigError):
            spec_from_dict({"__type__": "cpu", "name": "x"})


class TestSkuRoundTrip:
    @pytest.mark.parametrize("name", sorted(paper_skus()))
    def test_every_paper_sku(self, name):
        sku = paper_skus()[name]
        loaded = sku_from_dict(sku_to_dict(sku))
        assert loaded == sku

    def test_carbon_identical_after_round_trip(self):
        model = CarbonModel()
        sku = greensku_full()
        loaded = sku_from_json(sku_to_json(sku))
        assert model.assess(loaded).total_per_core == pytest.approx(
            model.assess(sku).total_per_core
        )

    def test_file_round_trip(self, tmp_path):
        path = tmp_path / "sku.json"
        save_sku(baseline_gen3(), path)
        loaded = load_sku(path)
        assert loaded.name == "Baseline"
        assert loaded.cores == 80

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(ConfigError):
            load_sku(tmp_path / "nope.json")

    def test_invalid_json_rejected(self):
        with pytest.raises(ConfigError):
            sku_from_json("{not json")

    def test_missing_fields_rejected(self):
        with pytest.raises(ConfigError):
            sku_from_dict({"name": "x"})
