"""Component spec tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.errors import ConfigError
from repro.hardware.components import (
    Category,
    ComponentSpec,
    CpuSpec,
    CxlControllerSpec,
    DramSpec,
    SsdSpec,
    reused,
    scaled_dram,
    scaled_ssd,
)


def make_spec(**overrides):
    base = dict(
        name="part",
        category=Category.OTHER,
        tdp_watts=10.0,
        embodied_kg=5.0,
    )
    base.update(overrides)
    return ComponentSpec(**base)


class TestComponentSpec:
    def test_effective_embodied_new(self):
        assert make_spec().effective_embodied_kg == 5.0

    def test_effective_embodied_reused_is_zero(self):
        # Reused parts are second-life: zero embodied carbon.
        assert make_spec(reused=True).effective_embodied_kg == 0.0

    def test_as_reused_keeps_power_and_afr(self):
        spec = make_spec(afr_per_100_servers=0.2)
        second_life = spec.as_reused()
        assert second_life.tdp_watts == spec.tdp_watts
        assert second_life.afr_per_100_servers == spec.afr_per_100_servers
        assert second_life.effective_embodied_kg == 0.0

    def test_reused_alias(self):
        assert reused(make_spec()).reused

    def test_powered_watts_applies_derate_and_loss(self):
        spec = make_spec(tdp_watts=100, loss_factor=0.05)
        assert spec.powered_watts(0.44) == pytest.approx(100 * 0.44 * 1.05)

    def test_powered_watts_rejects_bad_derate(self):
        with pytest.raises(ConfigError):
            make_spec().powered_watts(1.5)

    def test_negative_tdp_rejected(self):
        with pytest.raises(ConfigError):
            make_spec(tdp_watts=-1)

    def test_negative_embodied_rejected(self):
        with pytest.raises(ConfigError):
            make_spec(embodied_kg=-1)

    def test_negative_afr_rejected(self):
        with pytest.raises(ConfigError):
            make_spec(afr_per_100_servers=-0.1)

    @given(st.floats(min_value=0, max_value=1))
    def test_powered_watts_monotone_in_derate(self, derate):
        spec = make_spec(tdp_watts=200)
        assert spec.powered_watts(derate) <= spec.powered_watts(1.0)


class TestCpuSpec:
    def make(self, **overrides):
        base = dict(
            name="cpu",
            category=Category.CPU,
            tdp_watts=400,
            embodied_kg=28.3,
            cores=128,
            max_freq_ghz=3.0,
            llc_mib=256,
            perf_per_core=0.9,
        )
        base.update(overrides)
        return CpuSpec(**base)

    def test_tdp_per_core(self):
        assert self.make().tdp_per_core == pytest.approx(400 / 128)

    def test_zero_cores_rejected(self):
        with pytest.raises(ConfigError):
            self.make(cores=0)

    def test_zero_perf_rejected(self):
        with pytest.raises(ConfigError):
            self.make(perf_per_core=0)


class TestDramSpec:
    def make(self, **overrides):
        base = dict(
            name="dimm",
            category=Category.DRAM,
            tdp_watts=0.37 * 64,
            embodied_kg=1.65 * 64,
            capacity_gb=64,
        )
        base.update(overrides)
        return DramSpec(**base)

    def test_watts_per_gb(self):
        assert self.make().watts_per_gb == pytest.approx(0.37)

    def test_zero_capacity_rejected(self):
        with pytest.raises(ConfigError):
            self.make(capacity_gb=0)

    def test_unknown_technology_rejected(self):
        with pytest.raises(ConfigError):
            self.make(technology="ddr3")

    def test_scaled_dram_scales_linearly(self):
        base = self.make()
        doubled = scaled_dram(base, 128)
        assert doubled.capacity_gb == 128
        assert doubled.tdp_watts == pytest.approx(2 * base.tdp_watts)
        assert doubled.embodied_kg == pytest.approx(2 * base.embodied_kg)

    def test_scaled_dram_rejects_zero(self):
        with pytest.raises(ConfigError):
            scaled_dram(self.make(), 0)

    def test_scaled_dram_custom_name(self):
        assert scaled_dram(self.make(), 32, name="tiny").name == "tiny"


class TestSsdSpec:
    def make(self, **overrides):
        base = dict(
            name="ssd",
            category=Category.SSD,
            tdp_watts=11.2,
            embodied_kg=34.6,
            capacity_tb=2.0,
        )
        base.update(overrides)
        return SsdSpec(**base)

    def test_watts_per_tb(self):
        assert self.make().watts_per_tb == pytest.approx(5.6)

    def test_zero_capacity_rejected(self):
        with pytest.raises(ConfigError):
            self.make(capacity_tb=0)

    def test_unknown_interface_rejected(self):
        with pytest.raises(ConfigError):
            self.make(interface="u.2")

    def test_scaled_ssd(self):
        base = self.make()
        bigger = scaled_ssd(base, 4.0)
        assert bigger.capacity_tb == 4.0
        assert bigger.tdp_watts == pytest.approx(2 * base.tdp_watts)


class TestCxlControllerSpec:
    def test_slots_must_be_positive(self):
        with pytest.raises(ConfigError):
            CxlControllerSpec(
                name="cxl",
                category=Category.CXL,
                tdp_watts=5.8,
                embodied_kg=2.5,
                dimm_slots=0,
            )
