"""Catalog data tests: the paper's open-source component values."""

import pytest

from repro.hardware import catalog
from repro.hardware.components import Category


class TestTableVValues:
    """Values fixed by the paper's Table V (artifact Appendix A)."""

    def test_bergamo_tdp_and_embodied(self):
        assert catalog.BERGAMO.tdp_watts == 400.0
        assert catalog.BERGAMO.embodied_kg == 28.3

    def test_bergamo_vr_loss(self):
        # Table VI: CPU voltage regulator loss 1.05.
        assert catalog.BERGAMO.loss_factor == pytest.approx(0.05)

    def test_ddr5_power_density(self):
        assert catalog.DDR5_64GB.watts_per_gb == pytest.approx(0.37)
        assert catalog.DDR5_96GB.watts_per_gb == pytest.approx(0.37)

    def test_ddr5_embodied_density(self):
        assert catalog.DDR5_64GB.embodied_kg == pytest.approx(1.65 * 64)

    def test_reused_ddr4_zero_embodied(self):
        assert catalog.DDR4_32GB_REUSED.effective_embodied_kg == 0.0
        assert catalog.DDR4_32GB_REUSED_APPENDIX.effective_embodied_kg == 0.0

    def test_appendix_ddr4_uses_table_v_power(self):
        assert catalog.DDR4_32GB_REUSED_APPENDIX.watts_per_gb == pytest.approx(
            0.37
        )

    def test_new_ssd_densities(self):
        assert catalog.SSD_2TB_NEW.watts_per_tb == pytest.approx(5.6)
        assert catalog.SSD_4TB_NEW.embodied_kg == pytest.approx(17.3 * 4)

    def test_cxl_controller(self):
        assert catalog.CXL_CONTROLLER.tdp_watts == pytest.approx(5.8)
        assert catalog.CXL_CONTROLLER.embodied_kg == pytest.approx(2.5)


class TestTableIValues:
    """CPU characteristics from the paper's Table I."""

    def test_core_counts(self):
        assert catalog.BERGAMO.cores == 128
        assert catalog.ROME.cores == 64
        assert catalog.MILAN.cores == 64
        assert catalog.GENOA.cores == 80

    def test_frequencies(self):
        assert catalog.BERGAMO.max_freq_ghz == 3.0
        assert catalog.GENOA.max_freq_ghz == 3.7

    def test_llc_sizes(self):
        assert catalog.BERGAMO.llc_mib == 256
        assert catalog.GENOA.llc_mib == 384

    def test_genoa_tdp_within_table1_range(self):
        assert 300 <= catalog.GENOA.tdp_watts <= 350

    def test_table1_rows_shape(self):
        rows = catalog.table1_rows()
        assert len(rows) == 4
        assert all(len(row) == 5 for row in rows)


class TestPerformanceCalibration:
    def test_bergamo_10pct_slower_than_genoa(self):
        # Sysbench: 10% per-core slowdown vs Genoa.
        ratio = catalog.BERGAMO.perf_per_core / catalog.GENOA.perf_per_core
        assert ratio == pytest.approx(0.90, abs=0.005)

    def test_bergamo_6pct_slower_than_milan(self):
        ratio = catalog.BERGAMO.perf_per_core / catalog.MILAN.perf_per_core
        assert ratio == pytest.approx(0.94, abs=0.01)

    def test_genoa_bandwidth_per_core(self):
        # Section III: Genoa offers 5.8 GB/s per core.
        assert catalog.GENOA.mem_bw_gbps / catalog.GENOA.cores == pytest.approx(
            5.75, abs=0.1
        )


class TestReliabilityCalibration:
    def test_dimm_and_ssd_afrs(self):
        # Section V footnote: DIMM AFR ~0.1, SSD AFR ~0.2 per 100 servers.
        assert catalog.DDR5_64GB.afr_per_100_servers == pytest.approx(0.1)
        assert catalog.SSD_2TB_NEW.afr_per_100_servers == pytest.approx(0.2)

    def test_reused_parts_keep_new_afrs(self):
        assert catalog.DDR4_32GB_REUSED.afr_per_100_servers == pytest.approx(0.1)
        assert catalog.SSD_1TB_REUSED.afr_per_100_servers == pytest.approx(0.2)

    def test_dimms_and_ssds_fip_eligible(self):
        assert catalog.DDR5_64GB.fip_eligible
        assert catalog.SSD_1TB_REUSED.fip_eligible
        assert not catalog.PLATFORM_MISC.fip_eligible


class TestSsdPerformance:
    def test_old_vs_new_ssd_speeds(self):
        # Section III: old drives 1 GB/s / 250 kIOPS; new 2.3 GB/s / 600.
        assert catalog.SSD_1TB_REUSED.write_bw_gbps == pytest.approx(1.0)
        assert catalog.SSD_1TB_REUSED.write_kiops == pytest.approx(250)
        assert catalog.SSD_4TB_NEW.write_bw_gbps == pytest.approx(2.3)
        assert catalog.SSD_4TB_NEW.write_kiops == pytest.approx(600)

    def test_old_ssd_is_m2(self):
        assert catalog.SSD_1TB_REUSED.interface == "m.2"
        assert catalog.SSD_4TB_NEW.interface == "e1.s"

    def test_old_ssd_less_energy_efficient(self):
        assert (
            catalog.SSD_1TB_REUSED.watts_per_tb
            > catalog.SSD_4TB_NEW.watts_per_tb
        )


class TestCategories:
    def test_catalog_categories(self):
        assert catalog.BERGAMO.category == Category.CPU
        assert catalog.DDR4_32GB_REUSED.category == Category.DRAM
        assert catalog.SSD_1TB_REUSED.category == Category.SSD
        assert catalog.CXL_CONTROLLER.category == Category.CXL
        assert catalog.NIC_100G.category == Category.NIC
        assert catalog.PLATFORM_MISC.category == Category.OTHER
