"""Fault-injection differential: interrupted + resumed == clean.

The acceptance test for the resilience layer.  A 35-seed Fig. 9/10
suite is run three ways:

1. **clean** — no resilience policy, the PR 1 code path;
2. **interrupted** — under a policy that kills workers on selected task
   indices until their retry budget is exhausted, with the persistent
   trace store corrupted under it mid-flight;
3. **resumed** — same journal, faults cleared, picking up the survivors
   from disk and recomputing only the casualties.

The resumed run must be bit-identical to the clean run — same packing
points, same trace digests (the RNG fingerprint) — and the telemetry
manifest must show the retries, resumes, and quarantines that happened
along the way.
"""

import pytest

from repro.allocation.store import (
    STORE_DIR_ENV,
    STORE_ENV,
    TraceStore,
)
from repro.allocation.traces import (
    TraceParams,
    production_trace_suite,
    suite_specs,
)
from repro.core import telemetry
from repro.core.faults import FaultPlan, corrupt_file
from repro.core.resilience import (
    CheckpointJournal,
    ResiliencePolicy,
    RetryPolicy,
    activated,
)
from repro.experiments import fig9_packing, fig10_memutil

TRACE_COUNT = 35
VMS = 60  # full seed count, small traces: differential stays fast
PARAMS = TraceParams(mean_concurrent_vms=VMS)

#: Task indices whose worker is killed on *every* attempt during the
#: interrupted run — they exhaust the retry budget and degrade.
DOOMED = (4, 19)
#: Task indices killed on the first attempt only — retries recover them.
FLAKY = tuple(i for i in range(0, TRACE_COUNT, 7) if i not in DOOMED)


def _fast_retry(max_retries=2):
    return RetryPolicy(
        max_retries=max_retries, backoff_base_s=0.0, sleep=lambda _s: None
    )


@pytest.fixture()
def store_env(tmp_path, monkeypatch):
    """Route the global trace store into this test's sandbox."""
    monkeypatch.setenv(STORE_ENV, "1")
    monkeypatch.setenv(STORE_DIR_ENV, str(tmp_path / "traces"))
    return TraceStore(directory=tmp_path / "traces")


def _run(experiment):
    return experiment.run(
        trace_count=TRACE_COUNT, mean_concurrent_vms=VMS, jobs=1
    )


class TestFig9Differential:
    def test_interrupted_plus_resumed_is_bit_identical(
        self, tmp_path, store_env
    ):
        clean = _run(fig9_packing)
        clean_digests = [
            t.digest()
            for t in production_trace_suite(count=TRACE_COUNT, params=PARAMS)
        ]

        # Sabotage the environment: corrupt two stored traces (one torn,
        # one bit-rotted) and kill workers on a third of the tasks.
        store = store_env
        specs = suite_specs(count=TRACE_COUNT, params=PARAMS)
        for index, mode in ((3, "truncate"), (11, "garble")):
            seed, trace_params, _name = specs[index]
            path = store.path(seed, trace_params)
            assert path.exists(), "clean run should have populated the store"
            corrupt_file(path, mode=mode, seed=5)

        journal = CheckpointJournal(tmp_path / "journal")
        interrupted_policy = ResiliencePolicy(
            journal=journal,
            retry=_fast_retry(max_retries=2),
            faults=FaultPlan(
                kill_indices=DOOMED + FLAKY,
                # DOOMED tasks die on attempts 0..2 (the whole budget);
                # FLAKY tasks die only on attempt 0 and recover.
                kill_attempts=1,
            ),
            on_failure="record",
        )
        doomed_policy = ResiliencePolicy(
            journal=journal,
            retry=_fast_retry(max_retries=2),
            faults=FaultPlan(kill_indices=DOOMED, kill_attempts=3),
            on_failure="record",
        )

        # Pass 1: flaky kills — every task retries its way through.
        with telemetry.capture() as tel:
            with activated(interrupted_policy):
                flaky_result = _run(fig9_packing)
        manifest = tel.manifest(command="fig9-interrupted")
        assert telemetry.validate_manifest(manifest) == []
        counters = manifest["counters"]
        assert counters["resilience.retries"] >= len(DOOMED + FLAKY)
        assert counters["trace.store_quarantined"] == 2
        assert flaky_result == clean

        # Pass 2: fresh journal, two tasks doomed past their retry
        # budget — the run degrades instead of dying.
        for entry in journal.directory.glob("*.pkl"):
            entry.unlink()
        journal.meta_path.unlink(missing_ok=True)
        with telemetry.capture() as tel:
            with activated(doomed_policy):
                degraded = _run(fig9_packing)
        manifest = tel.manifest(command="fig9-degraded")
        counters = manifest["counters"]
        assert counters["resilience.failures"] == len(DOOMED)
        assert counters["resilience.checkpointed"] == TRACE_COUNT - len(
            DOOMED
        )
        assert len(manifest["failures"]) == len(DOOMED)
        assert all(
            f["error_type"] == "InjectedFault" and f["attempts"] == 3
            for f in manifest["failures"]
        )
        # Graceful degradation: the surviving seeds are the clean run's
        # results with the doomed indices cut out.
        expected_base = [
            p
            for i, p in enumerate(clean.baseline_points)
            if i not in DOOMED
        ]
        assert degraded.baseline_points == expected_base

        # Pass 3: resume with faults cleared.  Only the doomed tasks
        # recompute; everything else journal-hits.
        with telemetry.capture() as tel:
            with activated(ResiliencePolicy(journal=journal)):
                resumed = _run(fig9_packing)
        manifest = tel.manifest(command="fig9-resumed")
        counters = manifest["counters"]
        assert counters["resilience.resumed"] == TRACE_COUNT - len(DOOMED)
        assert counters["resilience.checkpointed"] == len(DOOMED)
        assert manifest["failures"] == []

        assert resumed == clean, "resumed run must be bit-identical"
        resumed_digests = [
            t.digest()
            for t in production_trace_suite(count=TRACE_COUNT, params=PARAMS)
        ]
        assert resumed_digests == clean_digests, (
            "trace RNG state must be untouched by faults and resume"
        )


class TestFig10Differential:
    def test_resume_after_kills_matches_clean(self, tmp_path, store_env):
        clean = _run(fig10_memutil)

        journal = CheckpointJournal(tmp_path / "journal10")
        seed, trace_params, _name = suite_specs(
            count=TRACE_COUNT, params=PARAMS
        )[7]
        corrupt_file(store_env.path(seed, trace_params), mode="truncate")
        with telemetry.capture() as tel:
            with activated(
                ResiliencePolicy(
                    journal=journal,
                    retry=_fast_retry(max_retries=2),
                    faults=FaultPlan(kill_indices=DOOMED, kill_attempts=3),
                    on_failure="record",
                )
            ):
                _run(fig10_memutil)
        counters = tel.manifest(command="fig10-degraded")["counters"]
        assert counters["resilience.failures"] == len(DOOMED)
        assert counters["trace.store_quarantined"] == 1

        with telemetry.capture() as tel:
            with activated(ResiliencePolicy(journal=journal)):
                resumed = _run(fig10_memutil)
        counters = tel.manifest(command="fig10-resumed")["counters"]
        assert counters["resilience.resumed"] == TRACE_COUNT - len(DOOMED)
        assert resumed == clean
