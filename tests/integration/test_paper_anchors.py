"""Integration tests: every quantitative anchor the paper states.

Each test cites the paper's sentence it checks.  Together these pin the
reproduction to the published results.
"""

import math

import pytest

from repro.carbon.model import CarbonModel
from repro.carbon.savings import paper_savings_table
from repro.gsf.adoption import AdoptionModel
from repro.hardware.datacenter import appendix_config
from repro.hardware.sku import (
    baseline_gen3,
    greensku_cxl,
    greensku_efficient,
    greensku_full,
)
from repro.perf.apps import cxl_tolerant_core_hour_share, get_app
from repro.perf.latency import low_load_comparison
from repro.perf.scaling import factors_by_app
from repro.reliability.afr import server_afr
from repro.reliability.maintenance import paper_maintenance_comparison


class TestSectionIII:
    def test_bergamo_sysbench_slowdowns(self):
        """'Bergamo incurs 10% and 6% per-core slowdown in Sysbench,
        relative to Genoa and Milan.'"""
        from repro.hardware import catalog

        vs_genoa = 1 - catalog.BERGAMO.perf_per_core / catalog.GENOA.perf_per_core
        vs_milan = 1 - catalog.BERGAMO.perf_per_core / catalog.MILAN.perf_per_core
        assert vs_genoa == pytest.approx(0.10, abs=0.01)
        assert vs_milan == pytest.approx(0.06, abs=0.01)

    def test_bandwidth_per_core(self):
        """'AMD Genoa ... offers 5.8 GB/s per core.  AMD Bergamo, with
        128 cores and 460 + 100 GB/s, offers 4.4 GB/s per core.'"""
        assert baseline_gen3().mem_bw_per_core == pytest.approx(5.8, abs=0.1)
        assert greensku_cxl().mem_bw_per_core == pytest.approx(4.4, abs=0.1)

    def test_cxl_latency_ratio(self):
        """'~280ns at medium load, compared to 140ns for local DDR5.'"""
        from repro.hardware import catalog

        assert catalog.CXL_CONTROLLER.load_latency_ns == pytest.approx(280)
        assert catalog.LOCAL_DDR5_LATENCY_NS == pytest.approx(140)

    def test_full_uses_all_pcie_lanes_for_cxl_cards(self):
        """Two 16-lane CXL cards hold the 8 reused DIMMs (4 per card)."""
        sku = greensku_full()
        cxl_parts = [
            (spec, n)
            for spec, n in sku.iter_parts()
            if spec.category.value == "cxl"
        ]
        assert sum(n for _s, n in cxl_parts) == 2
        slots = sum(s.dimm_slots * n for s, n in cxl_parts)
        assert slots == 8


class TestSectionV:
    def test_worked_example_chain(self):
        """The full Section V numeric chain in one pass."""
        model = CarbonModel(appendix_config())
        a = model.assess(greensku_cxl(appendix_data=True))
        assert a.server.power_watts == pytest.approx(403, abs=1)
        assert a.server.embodied_kg == pytest.approx(1644, abs=1)
        assert a.servers_per_rack == 16
        assert a.rack_total_kg == pytest.approx(63_351, rel=0.002)
        assert a.total_per_core == pytest.approx(31, abs=0.2)

    def test_maintenance_chain(self):
        """AFRs 4.8/7.2 -> FIP 3.0/3.6 -> C_OOS ~3.0 both."""
        assert server_afr(baseline_gen3()).total == pytest.approx(4.8)
        assert server_afr(greensku_full()).total == pytest.approx(7.2)
        base, green = paper_maintenance_comparison()
        assert base.repair_rate == pytest.approx(3.0)
        assert green.repair_rate == pytest.approx(3.6)
        assert green.c_oos == pytest.approx(base.c_oos, abs=0.05)

    def test_greensku_full_per_server_carbon_premium(self):
        """'GreenSKU-Full's per-server carbon being 26.2% higher than the
        Gen3 baseline SKU' (open-data calibration lands near it)."""
        model = CarbonModel()
        ratio = (
            model.assess(greensku_full()).per_server_total_kg
            / model.assess(baseline_gen3()).per_server_total_kg
        )
        assert ratio == pytest.approx(1.262, abs=0.12)


class TestSectionVI:
    def test_table8_within_one_point(self):
        """Table VIII's twelve savings cells within +-1.5 points."""
        expected = {
            "Baseline-Resized": (6, 10, 8),
            "GreenSKU-Efficient": (16, 14, 15),
            "GreenSKU-CXL": (15, 32, 24),
            "GreenSKU-Full": (14, 38, 26),
        }
        for row in paper_savings_table():
            if row.sku_name not in expected:
                continue
            op, emb, total = expected[row.sku_name]
            assert 100 * row.operational_savings == pytest.approx(op, abs=1.5)
            assert 100 * row.embodied_savings == pytest.approx(emb, abs=1.5)
            assert 100 * row.total_savings == pytest.approx(total, abs=1.5)

    def test_scaling_factor_headcounts(self):
        """'For seven applications ... without any scaling.  For another
        nine applications, scaling by 25% is required.'"""
        factors = factors_by_app(generation=3)
        assert sum(1 for f in factors.values() if f == 1.0) == 7
        assert sum(1 for f in factors.values() if f == 1.25) == 9

    def test_cxl_tolerant_share(self):
        """'20.2% of our applications, weighted by proportion of fleet
        core-hours, do not face significant performance penalties.'"""
        assert cxl_tolerant_core_hour_share() == pytest.approx(0.202, abs=0.02)

    def test_low_load_latency_vs_gen3(self):
        """'...16% higher than Gen3' median low-load latency."""
        from repro.perf.apps import APPLICATIONS
        from repro.perf.scaling import scaling_factor
        import numpy as np

        apps = [a for a in APPLICATIONS if a.latency_critical]
        scaled = {}
        for app in apps:
            result = scaling_factor(app, 3)
            if result.cores is not None:
                scaled[app.name] = result.cores
            else:
                scaled[app.name] = 12
        ratios = low_load_comparison(apps, scaled, generation=3)
        median = float(np.median(ratios))
        assert median == pytest.approx(1.16, abs=0.08)

    def test_adoption_balances_scaling_against_savings(self):
        """'these applications cannot be run on GreenSKU-Efficient, as
        they offset GreenSKU-Efficient's carbon savings' (Silo et al.)."""
        model = AdoptionModel(CarbonModel(), greensku_efficient())
        assert not model.decide("Silo", 3).adopt
        assert not model.decide("Masstree", 3).adopt
        assert model.decide("Redis", 3).adopt


class TestSectionVII:
    def test_tco_delta(self):
        """'a cost-efficient server SKU is only 5% less costly.'"""
        from repro.analysis.tco import TcoModel, cost_efficient_sku

        delta = TcoModel().per_core_delta(
            cost_efficient_sku(), greensku_full()
        )
        assert delta == pytest.approx(0.05, abs=0.03)

    def test_efficiency_equivalent_near_28pct(self):
        """'all server components must become 28% more energy
        efficient' (to match the performance-adjusted savings)."""
        from repro.analysis.alternatives import (
            efficiency_improvement_equivalent,
        )

        assert efficiency_improvement_equivalent(0.15) == pytest.approx(
            0.28, abs=0.05
        )

    def test_lifetime_extension_direction(self):
        """'we estimate the required lifetime extension to be
        6 -> 13 years' (open-data calibration: substantially above 6)."""
        from repro.analysis.alternatives import (
            lifetime_extension_equivalent,
        )

        assert lifetime_extension_equivalent(0.15) > 8.0
