"""Cross-component consistency: independent accounting paths agree."""

import pytest

from repro.allocation.cluster import ClusterSpec, simulate
from repro.carbon.attribution import attribute_workload, per_core_hour_kg
from repro.gsf.framework import Gsf
from repro.hardware.sku import baseline_gen3, greensku_full


class TestAttributionVsFleetAccounting:
    def test_vm_attribution_bounded_by_fleet_emissions(
        self, gsf, small_trace
    ):
        """The carbon attributed to VMs can never exceed what the hosting
        fleet emits over the same window (utilization <= 1)."""
        assessment = gsf.carbon_model.assess(baseline_gen3())
        from repro.gsf.sizing import right_size

        servers = right_size(small_trace, baseline_gen3())
        window = small_trace.duration_hours
        report = attribute_workload(
            small_trace.vms, assessment, horizon_hours=window
        )
        fleet_kg = (
            servers
            * baseline_gen3().cores
            * window
            * per_core_hour_kg(assessment)
        )
        assert report.total_kg <= fleet_kg

    def test_attribution_share_matches_utilization(self, gsf, small_trace):
        """Attributed carbon over fleet carbon equals mean core
        utilization of the right-sized cluster."""
        assessment = gsf.carbon_model.assess(baseline_gen3())
        from repro.gsf.sizing import right_size

        servers = right_size(small_trace, baseline_gen3())
        window = small_trace.duration_hours
        report = attribute_workload(
            small_trace.vms, assessment, horizon_hours=window
        )
        fleet_core_hours = servers * baseline_gen3().cores * window
        utilization = report.total_core_hours / fleet_core_hours
        carbon_share = report.total_kg / (
            fleet_core_hours * per_core_hour_kg(assessment)
        )
        assert carbon_share == pytest.approx(utilization, rel=1e-9)


class TestFrameworkVsRawSimulation:
    def test_framework_sizing_is_simulatable(self, gsf, small_trace):
        """The evaluation's sizing, replayed raw, hosts the trace."""
        evaluation = gsf.evaluate(greensku_full(), small_trace)
        policy = gsf.adoption_model(greensku_full()).policy()
        spec = ClusterSpec.of(
            (baseline_gen3(), evaluation.sizing.mixed_baseline_servers),
            (greensku_full(), evaluation.sizing.mixed_green_servers),
        )
        outcome = simulate(small_trace, spec, adoption=policy)
        assert outcome.feasible

    def test_reference_emissions_recomputable(self, gsf, small_trace):
        """reference.total_kg equals servers x per-server emissions."""
        evaluation = gsf.evaluate(greensku_full(), small_trace)
        per_server = evaluation.baseline_assessment.per_server_total_kg
        assert evaluation.reference.total_kg == pytest.approx(
            evaluation.reference.baseline_servers * per_server
        )

    def test_savings_invariant_under_emissions_scale(self, small_trace):
        """Scaling the grid CI scales emissions but savings stay put when
        adoption decisions do not flip (tiny CI nudge)."""
        a = Gsf().at_intensity(0.100)
        b = Gsf().at_intensity(0.101)
        ev_a = a.evaluate(greensku_full(), small_trace)
        ev_b = b.evaluate(greensku_full(), small_trace)
        assert ev_a.cluster_savings == pytest.approx(
            ev_b.cluster_savings, abs=0.01
        )
