"""Synthetic DIMM failure-trace tests (Fig. 2 behaviour)."""

import numpy as np
import pytest

from repro.core.errors import ConfigError
from repro.reliability.traces import (
    FailureTraceParams,
    expected_rate,
    moving_average,
    steady_state_slope,
    synthesize_failure_trace,
)


class TestExpectedRate:
    def test_starts_elevated(self):
        params = FailureTraceParams()
        rate = expected_rate(params, np.array([0]))
        assert rate[0] == pytest.approx(1 + params.infant_mortality)

    def test_decays_to_one(self):
        params = FailureTraceParams()
        rate = expected_rate(params, np.array([60]))
        assert rate[0] == pytest.approx(1.0, abs=0.01)

    def test_wearout_when_enabled(self):
        params = FailureTraceParams(
            wearout_onset_month=24, wearout_slope_per_month=0.05
        )
        rate = expected_rate(params, np.array([48]))
        assert rate[0] > 1.5


class TestSynthesis:
    def test_deterministic(self):
        m1, r1 = synthesize_failure_trace(seed=3)
        m2, r2 = synthesize_failure_trace(seed=3)
        np.testing.assert_array_equal(r1, r2)

    def test_84_months_default(self):
        months, rates = synthesize_failure_trace()
        assert len(months) == 84
        assert len(rates) == 84

    def test_all_positive(self):
        _, rates = synthesize_failure_trace(seed=9)
        assert (rates > 0).all()

    def test_noise_free_mode(self):
        params = FailureTraceParams(noise_cv=0.0)
        months, rates = synthesize_failure_trace(params)
        np.testing.assert_allclose(rates, expected_rate(params, months))

    def test_invalid_params(self):
        with pytest.raises(ConfigError):
            FailureTraceParams(months=0)
        with pytest.raises(ConfigError):
            FailureTraceParams(infant_decay_months=0)


class TestMovingAverage:
    def test_constant_series(self):
        out = moving_average(np.ones(20), window=6)
        np.testing.assert_allclose(out, 1.0)

    def test_window_one_is_identity(self):
        values = np.array([3.0, 1.0, 4.0])
        np.testing.assert_array_equal(moving_average(values, 1), values)

    def test_smooths_noise(self):
        _, rates = synthesize_failure_trace(seed=5)
        smoothed = moving_average(rates, window=6)
        assert smoothed[24:].std() < rates[24:].std()

    def test_invalid_window(self):
        with pytest.raises(ConfigError):
            moving_average(np.ones(5), 0)


class TestFlatness:
    def test_paper_claim_flat_after_infancy(self):
        # Fig. 2: failure rates stay constant over the 7-year window.
        months, rates = synthesize_failure_trace(seed=7)
        slope = steady_state_slope(months, rates)
        assert abs(slope) < 0.005

    def test_wearout_detected(self):
        params = FailureTraceParams(
            wearout_onset_month=30, wearout_slope_per_month=0.05
        )
        months, rates = synthesize_failure_trace(params, seed=7)
        assert steady_state_slope(months, rates) > 0.01

    def test_too_short_series_rejected(self):
        with pytest.raises(ConfigError):
            steady_state_slope(np.array([0, 1]), np.array([1.0, 1.0]))
