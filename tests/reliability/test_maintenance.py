"""Maintenance component tests: Little's law and C_OOS."""

import pytest

from repro.core.errors import ConfigError
from repro.reliability.maintenance import (
    assess_maintenance,
    out_of_service_fraction,
    paper_maintenance_comparison,
)
from repro.hardware.sku import baseline_gen3, greensku_full


class TestLittlesLaw:
    def test_formula(self):
        # 3.6 repairs/100/year at 10-day repair time.
        expected = 3.6 / 100 * 10 / 365
        assert out_of_service_fraction(3.6, 10) == pytest.approx(expected)

    def test_zero_rate(self):
        assert out_of_service_fraction(0.0) == 0.0

    def test_linear_in_repair_time(self):
        assert out_of_service_fraction(3.0, 20) == pytest.approx(
            2 * out_of_service_fraction(3.0, 10)
        )

    def test_negative_inputs_rejected(self):
        with pytest.raises(ConfigError):
            out_of_service_fraction(-1)
        with pytest.raises(ConfigError):
            out_of_service_fraction(1, -1)


class TestCOOS:
    def test_paper_comparison(self):
        # Section V: C_OOS = 3 for the baseline and 3.6*0.66*1.262 ~ 3.0
        # for GreenSKU-Full.
        base, green = paper_maintenance_comparison()
        assert base.c_oos == pytest.approx(3.0)
        assert green.c_oos == pytest.approx(3.6 * 0.66 * 1.262, rel=1e-9)
        assert green.c_oos == pytest.approx(3.0, abs=0.05)

    def test_overhead_negligible(self):
        base, green = paper_maintenance_comparison()
        assert abs(green.c_oos - base.c_oos) < 0.1

    def test_custom_ratios(self):
        assessment = assess_maintenance(
            greensku_full(),
            servers_ratio=1.0,
            per_server_emissions_ratio=1.0,
        )
        assert assessment.c_oos == pytest.approx(3.6)

    def test_negative_ratio_rejected(self):
        with pytest.raises(ConfigError):
            assess_maintenance(baseline_gen3(), servers_ratio=-1)


class TestAssessment:
    def test_oos_fraction_small(self):
        a = assess_maintenance(greensku_full())
        assert 0 < a.oos_fraction < 0.01

    def test_includes_afr_detail(self):
        a = assess_maintenance(baseline_gen3())
        assert a.afr.total == pytest.approx(4.8)
        assert a.repair_rate == pytest.approx(3.0)
