"""AFR aggregation tests: the Section V numbers exactly."""

import pytest

from repro.core.errors import ConfigError
from repro.reliability.afr import AfrBreakdown, server_afr
from repro.hardware.sku import baseline_gen3, greensku_cxl, greensku_full


class TestPaperNumbers:
    def test_baseline_afr_4_8(self):
        # "a baseline SKU with 12 DIMMs and 6 SSDs has an AFR of 4.8."
        assert server_afr(baseline_gen3()).total == pytest.approx(4.8)

    def test_full_afr_7_2(self):
        # "Our GreenSKU-Full has 20 DIMMs and 14 SSDs, causing an AFR
        # of 7.2."
        assert server_afr(greensku_full()).total == pytest.approx(7.2)

    def test_dimm_ssd_half_of_baseline_afr(self):
        # Footnote 3: DIMMs and SSDs constitute half of a server's AFR.
        afr = server_afr(baseline_gen3())
        assert afr.fip_eligible == pytest.approx(afr.total / 2)

    def test_fip_reduces_baseline_to_3(self):
        # "the repair rate per 100 servers for the baseline SKU ...
        # reduces to 3."
        assert server_afr(baseline_gen3()).repair_rate() == pytest.approx(3.0)

    def test_fip_reduces_full_to_3_6(self):
        assert server_afr(greensku_full()).repair_rate() == pytest.approx(3.6)


class TestFipBehaviour:
    def test_no_fip_leaves_full_afr(self):
        afr = server_afr(baseline_gen3())
        assert afr.repair_rate(fip_effectiveness=0.0) == pytest.approx(4.8)

    def test_perfect_fip_leaves_other_failures(self):
        afr = server_afr(baseline_gen3())
        assert afr.repair_rate(fip_effectiveness=1.0) == pytest.approx(
            afr.other
        )

    def test_fip_monotone(self):
        afr = server_afr(greensku_full())
        rates = [afr.repair_rate(e) for e in (0.0, 0.25, 0.5, 0.75, 1.0)]
        assert rates == sorted(rates, reverse=True)

    def test_invalid_effectiveness_rejected(self):
        with pytest.raises(ConfigError):
            server_afr(baseline_gen3()).repair_rate(1.5)


class TestBreakdown:
    def test_total_is_sum(self):
        b = AfrBreakdown("x", fip_eligible=2.0, other=1.5)
        assert b.total == 3.5

    def test_cxl_between_baseline_and_full(self):
        # GreenSKU-CXL: 20 DIMMs, 5 SSDs -> AFR between the two extremes.
        afr = server_afr(greensku_cxl())
        assert 4.8 < afr.total < 7.2
