"""Discrete-event queueing simulator tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import SimulationError
from repro.perf.queueing import (
    load_points,
    sample_service_times,
    saturation_qps,
    simulate_fcfs,
)


class TestServiceSampling:
    def test_exponential_mean(self):
        rng = np.random.default_rng(0)
        times = sample_service_times(rng, 200_000, mean_ms=2.0, cv=1.0)
        assert times.mean() == pytest.approx(2.0, rel=0.02)

    def test_lognormal_mean_and_cv(self):
        rng = np.random.default_rng(0)
        times = sample_service_times(rng, 200_000, mean_ms=5.0, cv=0.5)
        assert times.mean() == pytest.approx(5.0, rel=0.02)
        assert times.std() / times.mean() == pytest.approx(0.5, rel=0.05)

    def test_all_positive(self):
        rng = np.random.default_rng(1)
        assert (sample_service_times(rng, 10_000, 1.0, 2.0) > 0).all()

    def test_invalid_mean_rejected(self):
        rng = np.random.default_rng(0)
        with pytest.raises(SimulationError):
            sample_service_times(rng, 10, 0.0)

    def test_invalid_cv_rejected(self):
        rng = np.random.default_rng(0)
        with pytest.raises(SimulationError):
            sample_service_times(rng, 10, 1.0, cv=-1)


class TestSaturation:
    def test_saturation_qps(self):
        assert saturation_qps(8, 1.0) == 8000.0
        assert saturation_qps(10, 5.0) == 2000.0

    def test_invalid_inputs(self):
        with pytest.raises(SimulationError):
            saturation_qps(0, 1.0)
        with pytest.raises(SimulationError):
            saturation_qps(4, 0.0)

    def test_load_points_default(self):
        points = load_points(8, 1.0)
        assert len(points) == 9
        assert points[0] == pytest.approx(800.0)


class TestSimulation:
    def test_deterministic_given_seed(self):
        a = simulate_fcfs(1000, 4, 2.0, seed=3, requests=5000, warmup=500)
        b = simulate_fcfs(1000, 4, 2.0, seed=3, requests=5000, warmup=500)
        assert a.p95_ms == b.p95_ms

    def test_different_seed_different_result(self):
        a = simulate_fcfs(1000, 4, 2.0, seed=3, requests=5000, warmup=500)
        b = simulate_fcfs(1000, 4, 2.0, seed=4, requests=5000, warmup=500)
        assert a.p95_ms != b.p95_ms

    def test_latency_at_least_service_time_scale(self):
        result = simulate_fcfs(100, 8, 2.0, seed=0, requests=5000, warmup=500)
        # p50 of an exponential with mean 2 is ln(2)*2 ~ 1.39 ms.
        assert result.p50_ms > 0.5

    def test_percentile_ordering(self):
        result = simulate_fcfs(3000, 8, 2.0, seed=0, requests=20000)
        assert result.p50_ms <= result.p95_ms <= result.p99_ms

    def test_latency_grows_with_load(self):
        low = simulate_fcfs(1000, 8, 2.0, seed=0, requests=20000)
        high = simulate_fcfs(3600, 8, 2.0, seed=0, requests=20000)
        assert high.p95_ms > low.p95_ms

    def test_utilization_computed(self):
        result = simulate_fcfs(2000, 8, 2.0, seed=0, requests=1000, warmup=100)
        assert result.utilization == pytest.approx(0.5)
        assert not result.saturated

    def test_saturated_flag(self):
        result = simulate_fcfs(
            5000, 8, 2.0, seed=0, requests=2000, warmup=100
        )
        assert result.saturated

    def test_invalid_load_rejected(self):
        with pytest.raises(SimulationError):
            simulate_fcfs(0, 8, 1.0)

    def test_invalid_cores_rejected(self):
        with pytest.raises(SimulationError):
            simulate_fcfs(100, 0, 1.0)

    def test_mm1_mean_matches_theory(self):
        # M/M/1 at rho=0.5: E[R] = E[S]/(1-rho) = 2*E[S].
        result = simulate_fcfs(
            250, 1, 2.0, seed=2, requests=200_000, warmup=20_000
        )
        assert result.mean_ms == pytest.approx(4.0, rel=0.05)

    @settings(deadline=None, max_examples=10)
    @given(cores=st.integers(min_value=1, max_value=16))
    def test_more_cores_never_hurt(self, cores):
        lam, service = 800.0, 2.0
        if lam >= cores * 1000 / service:
            return  # skip unstable starting point
        few = simulate_fcfs(lam, cores, service, seed=1, requests=8000)
        more = simulate_fcfs(lam, cores + 4, service, seed=1, requests=8000)
        assert more.p95_ms <= few.p95_ms * 1.25  # noise tolerance


def _reference_percentiles(
    offered_qps, cores, mean_service_ms, cv, requests, warmup, seed
):
    """The pre-optimization dispatch loop: heapq over numpy scalars."""
    import heapq

    from repro.core.rng import RngFactory

    total = requests + warmup
    rngs = RngFactory(seed)
    inter_ms = rngs.stream("arrivals").exponential(
        1000.0 / offered_qps, size=total
    )
    arrivals = np.cumsum(inter_ms)
    services = sample_service_times(
        rngs.stream("services"), total, mean_service_ms, cv
    )
    free_at = [0.0] * cores
    heapq.heapify(free_at)
    responses = np.empty(total)
    for i in range(total):
        core_free = heapq.heappop(free_at)
        start = max(core_free, arrivals[i])
        done = start + services[i]
        heapq.heappush(free_at, done)
        responses[i] = done - arrivals[i]
    measured = responses[warmup:]
    p50, p95, p99 = np.percentile(measured, [50, 95, 99])
    return float(p50), float(p95), float(p99), float(measured.mean())


class TestDispatchEquivalence:
    """Both optimized dispatch paths are bit-identical to the naive loop."""

    @pytest.mark.parametrize("cores", [1, 4])
    def test_matches_reference_loop(self, cores):
        qps = 0.7 * saturation_qps(cores, 1.0)
        result = simulate_fcfs(
            qps, cores, 1.0, requests=4000, warmup=500, seed=3
        )
        ref = _reference_percentiles(qps, cores, 1.0, 1.0, 4000, 500, 3)
        assert (
            result.p50_ms,
            result.p95_ms,
            result.p99_ms,
            result.mean_ms,
        ) == ref
