"""Batched queueing substrate: bit-identity, backends, SimGrid, telemetry.

The equivalence suite here is the gate ISSUE 6 demands: the vectorized
lockstep dispatch must be *bit-identical* to the scalar oracle — same
``SimResult`` fields for every grid point — over seeds × app profiles ×
service-time CVs, and the ``reference`` backend must produce the same
``SimGrid`` digest as the vectorized one.
"""

import numpy as np
import pytest

from repro.core import telemetry
from repro.core.errors import ConfigError, SimulationError
from repro.perf.apps import get_app
from repro.perf.queueing import (
    BACKEND_ENV,
    QUEUEING_BACKENDS,
    resolve_backend,
    saturation_qps,
    set_default_backend,
    simulate_fcfs,
    simulate_fcfs_batch,
)

#: (app, cores, load fraction) profiles spanning single/multi-core and a
#: range of service times; cv values are crossed in separately.
PROFILES = (
    ("Xapian", 8, 0.7),
    ("Nginx", 4, 0.5),
    ("Moses", 2, 0.8),
    ("Img-DNN", 1, 0.6),
)

SEEDS = (0, 1, 2, 3, 4)
CVS = (1.0, 2.0)

REQUESTS, WARMUP = 4000, 500


def _equivalence_grid():
    """SoA parameter arrays for the seeds × profiles × cv grid."""
    qps, cores, svc, cv, seeds = [], [], [], [], []
    for name, n_cores, fraction in PROFILES:
        service_ms = get_app(name).service_ms_on("gen3")
        for point_cv in CVS:
            for seed in SEEDS:
                qps.append(fraction * saturation_qps(n_cores, service_ms))
                cores.append(n_cores)
                svc.append(service_ms)
                cv.append(point_cv)
                seeds.append(seed)
    return (
        np.array(qps),
        np.array(cores),
        np.array(svc),
        np.array(cv),
        np.array(seeds),
    )


class TestBitIdentity:
    def test_vectorized_matches_scalar_oracle(self):
        """Every grid point equals per-point simulate_fcfs, bit for bit."""
        qps, cores, svc, cv, seeds = _equivalence_grid()
        grid = simulate_fcfs_batch(
            qps, cores, svc, cv=cv, seeds=seeds,
            requests=REQUESTS, warmup=WARMUP, quantiles=(0.9,),
            method="vectorized",
        )
        assert len(grid) == len(PROFILES) * len(CVS) * len(SEEDS)
        for i in range(len(grid)):
            scalar = simulate_fcfs(
                float(qps[i]), int(cores[i]), float(svc[i]),
                cv=float(cv[i]), requests=REQUESTS, warmup=WARMUP,
                seed=int(seeds[i]), quantiles=(0.9,),
            )
            assert grid.result(i) == scalar

    def test_reference_backend_same_digest(self):
        qps, cores, svc, cv, seeds = _equivalence_grid()
        kwargs = dict(
            cv=cv, seeds=seeds, requests=REQUESTS, warmup=WARMUP,
        )
        vectorized = simulate_fcfs_batch(
            qps, cores, svc, method="vectorized", **kwargs
        )
        reference = simulate_fcfs_batch(
            qps, cores, svc, method="reference", **kwargs
        )
        assert vectorized.digest() == reference.digest()

    def test_single_core_fast_path(self):
        # All-single-core batches take a separate lockstep branch.
        grid = simulate_fcfs_batch(
            [300.0, 500.0], 1, 1.0, seeds=[7, 8],
            requests=2000, warmup=200,
        )
        for i, (qps, seed) in enumerate(((300.0, 7), (500.0, 8))):
            assert grid.result(i) == simulate_fcfs(
                qps, 1, 1.0, requests=2000, warmup=200, seed=seed
            )

    def test_batch_composition_irrelevant(self):
        # A point's result must not depend on its neighbours.
        alone = simulate_fcfs_batch(
            900.0, 4, 2.0, seeds=3, requests=2000, warmup=200
        )
        crowd = simulate_fcfs_batch(
            [900.0, 400.0, 1100.0], [4, 2, 8], 2.0, seeds=[3, 9, 1],
            requests=2000, warmup=200,
        )
        assert alone.result(0) == crowd.result(0)


class TestWideCoreGuard:
    """Points beyond WIDE_CORE_LIMIT cores route to the scalar oracle.

    The vectorized dispatcher's bubble pass costs ``cores.max() - 1``
    row operations per request over *every* point, so one 128-core point
    would tax the whole batch; wide points fall back per-point instead.
    """

    def _mixed_batch(self):
        service_ms = get_app("Xapian").service_ms_on("gen3")
        cores = np.array([2, 32, 8, 24, 4])
        qps = 0.6 * np.array(
            [saturation_qps(int(c), service_ms) for c in cores]
        )
        return qps, cores, service_ms

    def test_limit_value(self):
        from repro.perf.queueing import WIDE_CORE_LIMIT

        assert WIDE_CORE_LIMIT == 16

    def test_mixed_batch_bit_identical(self):
        qps, cores, service_ms = self._mixed_batch()
        grid = simulate_fcfs_batch(
            qps, cores, service_ms, seeds=np.arange(5),
            requests=2000, warmup=200, method="vectorized",
        )
        for i in range(5):
            assert grid.result(i) == simulate_fcfs(
                float(qps[i]), int(cores[i]), service_ms,
                requests=2000, warmup=200, seed=i,
            )

    def test_fallback_counted(self):
        qps, cores, service_ms = self._mixed_batch()
        with telemetry.capture() as tel:
            simulate_fcfs_batch(
                qps, cores, service_ms, seeds=np.arange(5),
                requests=2000, warmup=200, method="vectorized",
            )
        assert tel.counters["queueing.wide_core_fallback"] == 2
        # runs covers every point exactly once: 3 vectorized + 2 scalar.
        assert tel.counters["queueing.runs"] == 5
        assert tel.counters["queueing.events_simulated"] == 5 * 2200

    def test_all_wide_batch(self):
        service_ms = get_app("Nginx").service_ms_on("gen3")
        qps = 0.5 * saturation_qps(32, service_ms)
        with telemetry.capture() as tel:
            grid = simulate_fcfs_batch(
                [qps, qps], 32, service_ms, seeds=[0, 1],
                requests=1500, warmup=100, method="vectorized",
            )
        assert tel.counters["queueing.wide_core_fallback"] == 2
        for i in range(2):
            assert grid.result(i) == simulate_fcfs(
                qps, 32, service_ms, requests=1500, warmup=100, seed=i
            )

    def test_narrow_batch_never_falls_back(self):
        with telemetry.capture() as tel:
            simulate_fcfs_batch(
                [500.0, 900.0], [2, 16], 2.0, requests=1000, warmup=100,
                method="vectorized",
            )
        assert "queueing.wide_core_fallback" not in tel.counters


class TestSimGrid:
    def test_results_roundtrip(self):
        grid = simulate_fcfs_batch(
            [500.0, 900.0], [2, 4], 2.0, seeds=[0, 1],
            requests=1000, warmup=100,
        )
        rows = grid.results()
        assert len(rows) == 2
        assert rows[0] == grid.result(0)
        assert rows[0].requests == 1000

    def test_digest_deterministic_and_seed_sensitive(self):
        kwargs = dict(requests=1000, warmup=100)
        a = simulate_fcfs_batch([500.0], [2], 2.0, seeds=[0], **kwargs)
        b = simulate_fcfs_batch([500.0], [2], 2.0, seeds=[0], **kwargs)
        c = simulate_fcfs_batch([500.0], [2], 2.0, seeds=[1], **kwargs)
        assert a.digest() == b.digest()
        assert a.digest() != c.digest()

    def test_broadcasting(self):
        # Scalars broadcast against arrays; core grid × one load.
        grid = simulate_fcfs_batch(
            900.0, [2, 4, 8], 2.0, requests=500, warmup=100
        )
        assert len(grid) == 3
        assert list(grid.cores) == [2, 4, 8]

    def test_quantiles_recorded(self):
        grid = simulate_fcfs_batch(
            [900.0], [4], 2.0, requests=1000, warmup=100,
            quantiles=(0.5, 0.95),
        )
        assert grid.quantile_levels == (0.5, 0.95)
        r = grid.result(0)
        assert r.quantiles_ms == (r.p50_ms, r.p95_ms)


class TestValidation:
    def test_empty_batch_rejected(self):
        with pytest.raises(SimulationError):
            simulate_fcfs_batch([], [], [])

    def test_non_broadcastable_rejected(self):
        with pytest.raises(SimulationError):
            simulate_fcfs_batch([1.0, 2.0], [1, 2, 3], 1.0)

    def test_bad_parameters_rejected(self):
        with pytest.raises(SimulationError):
            simulate_fcfs_batch([0.0], [1], [1.0])
        with pytest.raises(SimulationError):
            simulate_fcfs_batch([100.0], [0], [1.0])
        with pytest.raises(SimulationError):
            simulate_fcfs_batch([100.0], [1], [0.0])
        with pytest.raises(SimulationError):
            simulate_fcfs_batch([100.0], [1], [1.0], cv=0.0)

    def test_bad_quantiles_rejected(self):
        for bad in (0.0, 1.0, -0.5, 2.0):
            with pytest.raises(SimulationError):
                simulate_fcfs_batch(
                    [100.0], [1], [1.0], quantiles=(bad,)
                )
        with pytest.raises(SimulationError):
            simulate_fcfs(100.0, 1, 1.0, quantiles=(1.5,))

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigError):
            simulate_fcfs_batch([100.0], [1], [1.0], method="magic")


class TestBackendResolution:
    def test_default_is_vectorized(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV, raising=False)
        assert resolve_backend() == "vectorized"

    def test_env_selects_reference(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "reference")
        assert resolve_backend() == "reference"

    def test_explicit_arg_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "reference")
        assert resolve_backend("vectorized") == "vectorized"

    def test_process_default_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "reference")
        set_default_backend("vectorized")
        try:
            assert resolve_backend() == "vectorized"
        finally:
            set_default_backend(None)

    def test_unknown_env_rejected(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "magic")
        with pytest.raises(ConfigError):
            resolve_backend()

    def test_unknown_default_rejected(self):
        with pytest.raises(ConfigError):
            set_default_backend("magic")

    def test_backends_constant(self):
        assert QUEUEING_BACKENDS == ("vectorized", "reference")


class TestTelemetry:
    def test_vectorized_counters(self):
        with telemetry.capture() as tel:
            simulate_fcfs_batch(
                [500.0, 900.0], [2, 4], 2.0, requests=1000, warmup=100,
                method="vectorized",
            )
        assert tel.counters["queueing.batches"] == 1
        assert tel.counters["queueing.grid_points"] == 2
        assert tel.counters["queueing.runs"] == 2
        assert tel.counters["queueing.events_simulated"] == 2 * 1100
        assert "queueing.simulate_fcfs_batch" in tel.timers

    def test_reference_counts_runs_once(self):
        # The reference backend's per-point simulate_fcfs calls already
        # count runs/events; the batch must not double-count them.
        with telemetry.capture() as tel:
            simulate_fcfs_batch(
                [500.0, 900.0], [2, 4], 2.0, requests=1000, warmup=100,
                method="reference",
            )
        assert tel.counters["queueing.runs"] == 2
        assert tel.counters["queueing.events_simulated"] == 2 * 1100
        assert tel.counters["queueing.grid_points"] == 2
