"""Pond-style tiering tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.errors import ConfigError
from repro.perf.apps import APPLICATIONS, get_app
from repro.perf.pond import (
    MITIGATED_SLOWDOWN_BOUND,
    TieringPlan,
    mitigated_share,
    plan_tiering,
    predicted_untouched_fraction,
)


class TestPredictor:
    def test_half_touched_with_margin(self):
        assert predicted_untouched_fraction(0.5, margin=0.1) == pytest.approx(
            0.4
        )

    def test_fully_touched_vm(self):
        assert predicted_untouched_fraction(1.0) == 0.0

    def test_never_negative(self):
        assert predicted_untouched_fraction(0.95, margin=0.1) == 0.0

    def test_invalid_fraction(self):
        with pytest.raises(ConfigError):
            predicted_untouched_fraction(1.5)

    @given(st.floats(min_value=0, max_value=1))
    def test_bounded(self, frac):
        u = predicted_untouched_fraction(frac)
        assert 0 <= u <= 1


class TestTolerantApps:
    def test_fully_cxl_backed(self):
        plan = plan_tiering(get_app("Redis"), 32.0, 0.5)
        assert plan.fully_cxl_backed
        assert plan.cxl_gb == 32.0
        assert plan.effective_slowdown == 1.0

    def test_cxl_fraction(self):
        plan = plan_tiering(get_app("Img-DNN"), 64.0, 0.3)
        assert plan.cxl_fraction == 1.0


class TestMitigatedApps:
    def test_untouched_memory_on_cxl(self):
        # Pond: untouched memory is almost half of a VM's allocation.
        plan = plan_tiering(get_app("Moses"), 40.0, max_memory_fraction=0.5)
        assert not plan.fully_cxl_backed
        assert plan.cxl_gb > 0
        assert plan.local_gb + plan.cxl_gb == pytest.approx(40.0)

    def test_capped_by_server_cxl_fraction(self):
        plan = plan_tiering(
            get_app("Moses"), 40.0, 0.1, server_cxl_fraction=0.25
        )
        assert plan.cxl_fraction <= 0.25 + 1e-9

    def test_mitigated_slowdown_small(self):
        # The whole point: CXL off the critical path.
        plan = plan_tiering(get_app("Moses"), 40.0, 0.5)
        assert plan.effective_slowdown < get_app("Moses").cxl_slowdown
        assert plan.effective_slowdown <= MITIGATED_SLOWDOWN_BOUND

    def test_hot_vm_gets_no_cxl(self):
        plan = plan_tiering(get_app("Moses"), 40.0, max_memory_fraction=1.0)
        assert plan.cxl_gb == 0.0
        assert plan.effective_slowdown == 1.0

    def test_invalid_memory(self):
        with pytest.raises(ConfigError):
            plan_tiering(get_app("Moses"), 0.0, 0.5)


class TestPaperClaim:
    def test_98pct_within_5pct_slowdown(self):
        # "98% of applications incur <5% slowdown with CXL."
        share = mitigated_share(APPLICATIONS)
        assert share >= 0.95

    @given(st.floats(min_value=0.0, max_value=1.0))
    def test_all_plans_valid_under_any_footprint(self, frac):
        for app_name in ("Moses", "Redis", "Silo"):
            plan = plan_tiering(get_app(app_name), 32.0, frac)
            assert plan.local_gb + plan.cxl_gb == pytest.approx(32.0)
            assert plan.effective_slowdown >= 1.0


class TestPlanValidation:
    def test_inconsistent_tiers_rejected(self):
        with pytest.raises(ConfigError):
            TieringPlan(
                vm_memory_gb=10.0,
                local_gb=4.0,
                cxl_gb=4.0,
                fully_cxl_backed=False,
                effective_slowdown=1.0,
            )

    def test_negative_tier_rejected(self):
        with pytest.raises(ConfigError):
            TieringPlan(
                vm_memory_gb=10.0,
                local_gb=-1.0,
                cxl_gb=11.0,
                fully_cxl_backed=False,
                effective_slowdown=1.0,
            )
