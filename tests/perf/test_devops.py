"""Table II tests: DevOps build slowdowns reproduce exactly."""

import pytest

from repro.perf.apps import get_app
from repro.perf.devops import build_slowdown, render_table2, table2_rows

#: Table II's published cells.
TABLE2 = {
    "Build-PHP": (1.27, 1.11, 1.00, 1.17, 1.38),
    "Build-Python": (1.28, 1.13, 1.00, 1.15, 1.21),
    "Build-Wasm": (1.34, 1.19, 1.00, 1.15, 1.28),
}


@pytest.fixture(scope="module")
def rows():
    return {row.app_name: row for row in table2_rows()}


class TestTable2:
    def test_three_builds(self, rows):
        assert set(rows) == set(TABLE2)

    @pytest.mark.parametrize("app_name", sorted(TABLE2))
    def test_cells_match_paper(self, rows, app_name):
        expected = TABLE2[app_name]
        got = [
            rows[app_name].slowdowns[c]
            for c in ("gen1", "gen2", "gen3", "efficient", "cxl")
        ]
        for g, e in zip(got, expected):
            assert g == pytest.approx(e, abs=0.005)

    def test_efficient_beats_gen1_everywhere(self, rows):
        # Section VI: "GreenSKU-Efficient outperforms Gen1 for all
        # applications."
        for row in rows.values():
            assert row.slowdowns["efficient"] < row.slowdowns["gen1"]

    def test_efficient_slowdown_band(self, rows):
        # "facing only 1.15x-1.17x slowdown compared to Gen3."
        for row in rows.values():
            assert 1.14 <= row.slowdowns["efficient"] <= 1.18

    def test_cxl_worse_than_efficient(self, rows):
        for row in rows.values():
            assert row.slowdowns["cxl"] > row.slowdowns["efficient"]


class TestHelpers:
    def test_build_slowdown_identity_on_gen3(self):
        assert build_slowdown(get_app("Build-PHP"), "gen3") == 1.0

    def test_render_contains_all(self):
        text = render_table2()
        for name in TABLE2:
            assert name in text
