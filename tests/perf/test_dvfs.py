"""DVFS planner tests (Section VIII future-work feature)."""

import pytest

from repro.core.errors import ConfigError
from repro.perf.apps import get_app
from repro.perf.dvfs import DvfsModel, frequency_sweep, plan_frequency
from repro.perf.latency import derive_slo


class TestDvfsModel:
    def test_speed_at_nominal(self):
        assert DvfsModel().speed_at(1.0) == pytest.approx(1.0)

    def test_speed_monotone_in_frequency(self):
        model = DvfsModel()
        assert model.speed_at(0.6) < model.speed_at(0.8) < model.speed_at(1.0)

    def test_memory_bound_app_insensitive(self):
        clocky = DvfsModel(freq_sensitivity=1.0)
        memory = DvfsModel(freq_sensitivity=0.2)
        assert memory.speed_at(0.6) > clocky.speed_at(0.6)

    def test_power_cubic_dynamic_term(self):
        model = DvfsModel(static_power_fraction=0.0)
        assert model.power_at(0.6) == pytest.approx(0.6**3)

    def test_power_at_nominal_is_one(self):
        assert DvfsModel().power_at(1.0) == pytest.approx(1.0)

    def test_out_of_range_rejected(self):
        with pytest.raises(ConfigError):
            DvfsModel().speed_at(0.5)

    def test_invalid_model_rejected(self):
        with pytest.raises(ConfigError):
            DvfsModel(f_min=0.0)


class TestPlanner:
    def test_low_load_gets_deep_cut(self):
        app = get_app("Nginx")
        slo = derive_slo(app, 3)
        plan = plan_frequency(app, 0.2 * slo.baseline_peak_qps, slo, 10)
        assert plan.meets_slo
        assert plan.frequency < 0.8
        assert plan.power_savings > 0.3

    def test_high_load_needs_nominal(self):
        app = get_app("Nginx")
        slo = derive_slo(app, 3)
        plan = plan_frequency(app, 0.9 * slo.baseline_peak_qps, slo, 10)
        assert plan.meets_slo
        assert plan.frequency == pytest.approx(1.0)

    def test_sweep_monotone_power(self):
        plans = frequency_sweep(get_app("Nginx"), cores=10)
        powers = [p.power_fraction for p in plans]
        assert powers == sorted(powers)
        assert all(p.meets_slo for p in plans)

    def test_overload_reported_honestly(self):
        app = get_app("Nginx")
        slo = derive_slo(app, 3)
        plan = plan_frequency(app, 10 * slo.baseline_peak_qps, slo, 10)
        assert not plan.meets_slo

    def test_invalid_load_rejected(self):
        app = get_app("Nginx")
        slo = derive_slo(app, 3)
        with pytest.raises(ConfigError):
            plan_frequency(app, 0.0, slo, 10)
