"""Latency-curve and SLO tests."""

import math

import numpy as np
import pytest

from repro.core.errors import ConfigError
from repro.perf.apps import get_app
from repro.perf.latency import (
    CurveSpec,
    derive_slo,
    derive_slos,
    latency_curve,
    latency_curves,
    low_load_comparison,
    low_load_latency_ms,
    meets_slo,
    peak_qps,
    tail_latencies,
    tail_latency_ms,
)
from repro.perf.queueing import simulate_fcfs


class TestPeak:
    def test_peak_qps_formula(self):
        app = get_app("Redis")  # 0.25 ms service, speed 1 on gen3
        assert peak_qps(app, "gen3", 8) == pytest.approx(8 / 0.00025)

    def test_peak_scales_with_cores(self):
        app = get_app("Xapian")
        assert peak_qps(app, "gen3", 12) == pytest.approx(
            1.5 * peak_qps(app, "gen3", 8)
        )

    def test_cxl_lowers_peak(self):
        app = get_app("Moses")
        assert peak_qps(app, "bergamo", 10, cxl=True) < peak_qps(
            app, "bergamo", 10
        )


class TestTailLatency:
    def test_saturated_is_inf(self):
        app = get_app("Redis")
        peak = peak_qps(app, "gen3", 8)
        assert math.isinf(tail_latency_ms(app, "gen3", 8, 1.1 * peak))

    def test_increases_with_load(self):
        app = get_app("Xapian")
        peak = peak_qps(app, "gen3", 8)
        low = tail_latency_ms(app, "gen3", 8, 0.3 * peak)
        high = tail_latency_ms(app, "gen3", 8, 0.9 * peak)
        assert high > low

    def test_sim_and_analytic_agree(self):
        app = get_app("Nginx")
        peak = peak_qps(app, "gen3", 8)
        analytic = tail_latency_ms(app, "gen3", 8, 0.7 * peak)
        sim = tail_latency_ms(app, "gen3", 8, 0.7 * peak, method="sim")
        assert sim == pytest.approx(analytic, rel=0.15)

    def test_unknown_method_rejected(self):
        with pytest.raises(ConfigError):
            tail_latency_ms(get_app("Redis"), "gen3", 8, 100, method="magic")

    def test_zero_load_rejected(self):
        with pytest.raises(ConfigError):
            tail_latency_ms(get_app("Redis"), "gen3", 8, 0)


class TestQuantileSemantics:
    """Regression: the sim path crashed with KeyError off {.5,.95,.99}."""

    def test_sim_honors_arbitrary_quantile(self):
        app = get_app("Nginx")
        load = 0.7 * peak_qps(app, "gen3", 8)
        p90 = tail_latency_ms(app, "gen3", 8, load, quantile=0.9,
                              method="sim")
        p50 = tail_latency_ms(app, "gen3", 8, load, quantile=0.5,
                              method="sim")
        p95 = tail_latency_ms(app, "gen3", 8, load, quantile=0.95,
                              method="sim")
        assert p50 < p90 < p95

    def test_sim_standard_quantile_unchanged(self):
        # The quantile path must reproduce the precomputed p95 exactly.
        app = get_app("Nginx")
        load = 0.7 * peak_qps(app, "gen3", 8)
        via_quantile = tail_latency_ms(
            app, "gen3", 8, load, quantile=0.95, method="sim", seed=3
        )
        direct = simulate_fcfs(
            load, 8, app.service_ms_on("gen3"), cv=app.service_cv, seed=3
        )
        assert via_quantile == direct.p95_ms

    @pytest.mark.parametrize("method", ["analytic", "sim"])
    @pytest.mark.parametrize("quantile", [0.0, 1.0, -0.2, 1.7, float("nan")])
    def test_invalid_quantile_raises_config_error(self, method, quantile):
        app = get_app("Redis")
        with pytest.raises(ConfigError):
            tail_latency_ms(
                app, "gen3", 8, 100.0, quantile=quantile, method=method
            )


class TestTailLatencies:
    """The batched grid evaluator matches the scalar path point-for-point."""

    def test_analytic_matches_scalar(self):
        app = get_app("Xapian")
        service_ms = app.service_ms_on("gen3")
        peak = peak_qps(app, "gen3", 8)
        loads = np.array([0.3, 0.6, 0.9]) * peak
        batched = tail_latencies(service_ms, 8, loads)
        for load, got in zip(loads, batched):
            assert got == pytest.approx(
                tail_latency_ms(app, "gen3", 8, float(load)), rel=1e-9
            )

    def test_sim_matches_scalar_bitwise(self):
        app = get_app("Moses")
        service_ms = app.service_ms_on("bergamo")
        peak = peak_qps(app, "bergamo", 4)
        loads = np.array([0.4, 0.8]) * peak
        batched = tail_latencies(
            service_ms, 4, loads, cv=app.service_cv, method="sim",
            seeds=np.array([5, 6]),
        )
        for load, seed, got in zip(loads, (5, 6), batched):
            assert got == tail_latency_ms(
                app, "bergamo", 4, float(load), method="sim", seed=seed
            )

    def test_saturated_points_are_inf(self):
        out = tail_latencies(2.0, 2, np.array([500.0, 5000.0]))
        assert np.isfinite(out[0])
        assert math.isinf(out[1])
        sim = tail_latencies(
            2.0, 2, np.array([500.0, 5000.0]), method="sim"
        )
        assert math.isinf(sim[1])

    def test_shape_preserved(self):
        out = tail_latencies(2.0, np.array([[2, 4], [8, 16]]), 500.0)
        assert out.shape == (2, 2)

    def test_invalid_load_rejected(self):
        with pytest.raises(ConfigError):
            tail_latencies(2.0, 4, np.array([100.0, 0.0]))

    def test_unknown_method_rejected(self):
        with pytest.raises(ConfigError):
            tail_latencies(2.0, 4, 100.0, method="magic")


class TestReferencePeak:
    """Regression: reference_peak_qps=0.0 silently meant 'use own peak'."""

    @pytest.mark.parametrize("bad_peak", [0.0, -100.0])
    def test_non_positive_reference_peak_rejected(self, bad_peak):
        app = get_app("Nginx")
        with pytest.raises(ConfigError):
            latency_curve(
                app, "gen3", 8, load_fractions=(0.5,),
                reference_peak_qps=bad_peak,
            )
        with pytest.raises(ConfigError):
            latency_curves(
                app,
                [CurveSpec("gen3", 8, reference_peak_qps=bad_peak)],
                load_fractions=(0.5,),
            )

    def test_none_uses_own_peak(self):
        app = get_app("Nginx")
        curve = latency_curve(
            app, "gen3", 8, load_fractions=(0.5,), reference_peak_qps=None
        )
        assert curve.qps[0] == pytest.approx(0.5 * curve.peak_qps)


class TestSeedDerivation:
    """Regression: per-point seeds came from the sweep index, so adding
    a load point reshuffled every later point's RNG."""

    def test_inserting_point_leaves_others_unchanged(self):
        app = get_app("Nginx")
        sparse = latency_curve(
            app, "gen3", 8, load_fractions=(0.3, 0.9), method="sim"
        )
        dense = latency_curve(
            app, "gen3", 8, load_fractions=(0.3, 0.6, 0.9), method="sim"
        )
        assert sparse.p95_ms[0] == dense.p95_ms[0]
        assert sparse.p95_ms[1] == dense.p95_ms[2]


class TestBatchedCurvesAndSlos:
    def test_latency_curves_match_per_curve_calls(self):
        app = get_app("Xapian")
        base_peak = peak_qps(app, "gen3", 8)
        specs = [
            CurveSpec("gen3", 8, label="base"),
            CurveSpec("bergamo", 10, reference_peak_qps=base_peak,
                      label="green"),
        ]
        for method in ("analytic", "sim"):
            panel = latency_curves(
                app, specs, load_fractions=(0.3, 0.7), method=method
            )
            for spec, curve in zip(specs, panel):
                single = latency_curve(
                    app, spec.platform, spec.cores, cxl=spec.cxl,
                    load_fractions=(0.3, 0.7),
                    reference_peak_qps=spec.reference_peak_qps,
                    label=spec.label, method=method,
                )
                assert curve == single

    def test_derive_slos_matches_derive_slo(self):
        apps = [get_app("Xapian"), get_app("Nginx")]
        for method, tolerance in (("analytic", 1e-12), ("sim", 0.0)):
            slos = derive_slos(apps, (1, 3), method=method)
            assert set(slos) == {
                (a.name, g) for a in apps for g in (1, 3)
            }
            for app in apps:
                for gen in (1, 3):
                    single = derive_slo(app, gen, method=method)
                    batched = slos[(app.name, gen)]
                    assert batched.load_qps == single.load_qps
                    assert batched.latency_ms == pytest.approx(
                        single.latency_ms, rel=tolerance, abs=0.0
                    )


class TestSlo:
    def test_slo_load_is_90pct_of_peak(self):
        app = get_app("Xapian")
        slo = derive_slo(app, 3)
        assert slo.load_qps == pytest.approx(0.9 * slo.baseline_peak_qps)

    def test_equal_platform_meets_own_slo(self):
        # An app with bergamo speed == gen3 speed meets the gen3 SLO at
        # 8 cores.
        app = get_app("Redis")
        slo = derive_slo(app, 3)
        assert meets_slo(app, slo, 8)

    def test_slower_platform_fails_at_equal_cores(self):
        app = get_app("Xapian")  # bergamo speed 0.72
        slo = derive_slo(app, 3)
        assert not meets_slo(app, slo, 8)

    def test_scaling_up_helps(self):
        app = get_app("Xapian")
        slo = derive_slo(app, 3)
        assert meets_slo(app, slo, 12)

    def test_cxl_never_helps(self):
        app = get_app("Moses")
        slo = derive_slo(app, 3)
        for cores in (8, 10, 12):
            if meets_slo(app, slo, cores, cxl=True):
                assert meets_slo(app, slo, cores)

    def test_gen1_slo_easier_than_gen3(self):
        app = get_app("Xapian")
        slo1, slo3 = derive_slo(app, 1), derive_slo(app, 3)
        assert slo1.load_qps < slo3.load_qps


class TestCurves:
    def test_curve_has_points_for_all_fractions(self):
        app = get_app("Nginx")
        curve = latency_curve(app, "gen3", 8, load_fractions=(0.2, 0.5, 0.8))
        assert len(curve.qps) == 3
        assert len(curve.p95_ms) == 3

    def test_hockey_stick_past_saturation(self):
        # A GreenSKU curve swept over the baseline's load axis goes to
        # infinity once the load exceeds its own (lower) peak.
        app = get_app("Masstree")
        base_peak = peak_qps(app, "gen3", 8)
        curve = latency_curve(
            app,
            "bergamo",
            8,
            load_fractions=(0.5, 0.9),
            reference_peak_qps=base_peak,
        )
        assert math.isinf(curve.p95_ms[-1])

    def test_max_load_meeting(self):
        app = get_app("Nginx")
        slo = derive_slo(app, 3)
        curve = latency_curve(
            app, "gen3", 8, load_fractions=(0.3, 0.6, 0.9, 0.95)
        )
        best = curve.max_load_meeting(slo.latency_ms * 1.0000001)
        assert best == pytest.approx(0.9 * curve.peak_qps, rel=0.01)

    def test_latency_at_nearest_point(self):
        app = get_app("Nginx")
        curve = latency_curve(app, "gen3", 8, load_fractions=(0.3, 0.6))
        assert curve.latency_at(curve.qps[0]) == curve.p95_ms[0]


class TestLowLoad:
    def test_low_load_latency_close_to_service_floor(self):
        app = get_app("Img-DNN")
        lat = low_load_latency_ms(app, "gen3", 8)
        # p95 of Exp(service) at negligible wait is ~3x the mean.
        assert lat == pytest.approx(3.0 * app.base_service_ms, rel=0.1)

    def test_greensku_low_load_higher_than_gen3(self):
        # Section VI: GreenSKU-Efficient's median low-load latency is
        # ~16% above Gen3.
        apps = [
            get_app(n)
            for n in ("Xapian", "Moses", "Nginx", "Sphinx", "WebF-Dynamic")
        ]
        ratios = low_load_comparison(
            apps, scaled_cores={}, generation=3
        )
        assert all(r >= 0.99 for r in ratios)
        assert max(r for r in ratios) > 1.05
