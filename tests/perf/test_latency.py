"""Latency-curve and SLO tests."""

import math

import pytest

from repro.core.errors import ConfigError
from repro.perf.apps import get_app
from repro.perf.latency import (
    derive_slo,
    latency_curve,
    low_load_comparison,
    low_load_latency_ms,
    meets_slo,
    peak_qps,
    tail_latency_ms,
)


class TestPeak:
    def test_peak_qps_formula(self):
        app = get_app("Redis")  # 0.25 ms service, speed 1 on gen3
        assert peak_qps(app, "gen3", 8) == pytest.approx(8 / 0.00025)

    def test_peak_scales_with_cores(self):
        app = get_app("Xapian")
        assert peak_qps(app, "gen3", 12) == pytest.approx(
            1.5 * peak_qps(app, "gen3", 8)
        )

    def test_cxl_lowers_peak(self):
        app = get_app("Moses")
        assert peak_qps(app, "bergamo", 10, cxl=True) < peak_qps(
            app, "bergamo", 10
        )


class TestTailLatency:
    def test_saturated_is_inf(self):
        app = get_app("Redis")
        peak = peak_qps(app, "gen3", 8)
        assert math.isinf(tail_latency_ms(app, "gen3", 8, 1.1 * peak))

    def test_increases_with_load(self):
        app = get_app("Xapian")
        peak = peak_qps(app, "gen3", 8)
        low = tail_latency_ms(app, "gen3", 8, 0.3 * peak)
        high = tail_latency_ms(app, "gen3", 8, 0.9 * peak)
        assert high > low

    def test_sim_and_analytic_agree(self):
        app = get_app("Nginx")
        peak = peak_qps(app, "gen3", 8)
        analytic = tail_latency_ms(app, "gen3", 8, 0.7 * peak)
        sim = tail_latency_ms(app, "gen3", 8, 0.7 * peak, method="sim")
        assert sim == pytest.approx(analytic, rel=0.15)

    def test_unknown_method_rejected(self):
        with pytest.raises(ConfigError):
            tail_latency_ms(get_app("Redis"), "gen3", 8, 100, method="magic")

    def test_zero_load_rejected(self):
        with pytest.raises(ConfigError):
            tail_latency_ms(get_app("Redis"), "gen3", 8, 0)


class TestSlo:
    def test_slo_load_is_90pct_of_peak(self):
        app = get_app("Xapian")
        slo = derive_slo(app, 3)
        assert slo.load_qps == pytest.approx(0.9 * slo.baseline_peak_qps)

    def test_equal_platform_meets_own_slo(self):
        # An app with bergamo speed == gen3 speed meets the gen3 SLO at
        # 8 cores.
        app = get_app("Redis")
        slo = derive_slo(app, 3)
        assert meets_slo(app, slo, 8)

    def test_slower_platform_fails_at_equal_cores(self):
        app = get_app("Xapian")  # bergamo speed 0.72
        slo = derive_slo(app, 3)
        assert not meets_slo(app, slo, 8)

    def test_scaling_up_helps(self):
        app = get_app("Xapian")
        slo = derive_slo(app, 3)
        assert meets_slo(app, slo, 12)

    def test_cxl_never_helps(self):
        app = get_app("Moses")
        slo = derive_slo(app, 3)
        for cores in (8, 10, 12):
            if meets_slo(app, slo, cores, cxl=True):
                assert meets_slo(app, slo, cores)

    def test_gen1_slo_easier_than_gen3(self):
        app = get_app("Xapian")
        slo1, slo3 = derive_slo(app, 1), derive_slo(app, 3)
        assert slo1.load_qps < slo3.load_qps


class TestCurves:
    def test_curve_has_points_for_all_fractions(self):
        app = get_app("Nginx")
        curve = latency_curve(app, "gen3", 8, load_fractions=(0.2, 0.5, 0.8))
        assert len(curve.qps) == 3
        assert len(curve.p95_ms) == 3

    def test_hockey_stick_past_saturation(self):
        # A GreenSKU curve swept over the baseline's load axis goes to
        # infinity once the load exceeds its own (lower) peak.
        app = get_app("Masstree")
        base_peak = peak_qps(app, "gen3", 8)
        curve = latency_curve(
            app,
            "bergamo",
            8,
            load_fractions=(0.5, 0.9),
            reference_peak_qps=base_peak,
        )
        assert math.isinf(curve.p95_ms[-1])

    def test_max_load_meeting(self):
        app = get_app("Nginx")
        slo = derive_slo(app, 3)
        curve = latency_curve(
            app, "gen3", 8, load_fractions=(0.3, 0.6, 0.9, 0.95)
        )
        best = curve.max_load_meeting(slo.latency_ms * 1.0000001)
        assert best == pytest.approx(0.9 * curve.peak_qps, rel=0.01)

    def test_latency_at_nearest_point(self):
        app = get_app("Nginx")
        curve = latency_curve(app, "gen3", 8, load_fractions=(0.3, 0.6))
        assert curve.latency_at(curve.qps[0]) == curve.p95_ms[0]


class TestLowLoad:
    def test_low_load_latency_close_to_service_floor(self):
        app = get_app("Img-DNN")
        lat = low_load_latency_ms(app, "gen3", 8)
        # p95 of Exp(service) at negligible wait is ~3x the mean.
        assert lat == pytest.approx(3.0 * app.base_service_ms, rel=0.1)

    def test_greensku_low_load_higher_than_gen3(self):
        # Section VI: GreenSKU-Efficient's median low-load latency is
        # ~16% above Gen3.
        apps = [
            get_app(n)
            for n in ("Xapian", "Moses", "Nginx", "Sphinx", "WebF-Dynamic")
        ]
        ratios = low_load_comparison(
            apps, scaled_cores={}, generation=3
        )
        assert all(r >= 0.99 for r in ratios)
        assert max(r for r in ratios) > 1.05
