"""Scaling-factor tests: Table III reproduced cell by cell."""

import math

import pytest

from repro.core.errors import ConfigError
from repro.perf.apps import get_app, table3_apps
from repro.perf.scaling import (
    CANDIDATE_CORES,
    FACTOR_GRID,
    ScalingResult,
    factors_by_app,
    scaling_factor,
    scaling_table,
)

#: Published Table III (app -> factors vs Gen1, Gen2, Gen3).
TABLE3 = {
    "Redis": (1, 1, 1),
    "Masstree": (1, 1, math.inf),
    "Silo": (math.inf, math.inf, math.inf),
    "Shore": (1, 1, 1),
    "Xapian": (1, 1, 1.5),
    "WebF-Dynamic": (1, 1.25, 1.25),
    "WebF-Hot": (1, 1.25, 1.5),
    "WebF-Cold": (1, 1, 1),
    "Moses": (1, 1, 1.25),
    "Sphinx": (1, 1.25, 1.25),
    "Img-DNN": (1, 1, 1),
    "Nginx": (1, 1, 1.25),
    "Caddy": (1, 1, 1),
    "Envoy": (1, 1, 1),
    "HAProxy": (1, 1, 1.25),
    "Traefik": (1, 1, 1.25),
    "Build-Python": (1, 1, 1.25),
    "Build-Wasm": (1, 1, 1.25),
    "Build-PHP": (1, 1, 1.25),
}


@pytest.fixture(scope="module")
def table():
    return scaling_table()


class TestTable3:
    @pytest.mark.parametrize("app_name", sorted(TABLE3))
    def test_every_published_cell(self, table, app_name):
        expected = TABLE3[app_name]
        got = tuple(table[app_name][gen].factor for gen in (1, 2, 3))
        assert got == expected

    def test_seven_apps_need_no_scaling_vs_gen3(self):
        # Section VI: "For seven applications, GreenSKU-Efficient meets
        # Gen3's SLO without any scaling."  Counted over all 20 apps
        # (Table III's 19 rows show six; WebF-Mix is the seventh).
        factors = factors_by_app(generation=3)
        unscaled = [name for name, f in factors.items() if f == 1.0]
        assert len(unscaled) == 7

    def test_nine_apps_need_25pct_scaling_vs_gen3(self, table):
        # "For another nine applications, scaling by 25% is required."
        scaled = [name for name in TABLE3 if table[name][3].factor == 1.25]
        assert len(scaled) == 9

    def test_silo_cannot_adopt_anywhere(self, table):
        for gen in (1, 2, 3):
            assert not table["Silo"][gen].adoptable_performance


class TestScalingResult:
    def test_display_formats(self):
        assert ScalingResult("a", 3, 1.0, 8).display == "1"
        assert ScalingResult("a", 3, 1.25, 10).display == "1.25"
        assert ScalingResult("a", 3, math.inf, None).display == ">1.5"

    def test_factor_maps_to_cores(self, table):
        for app_name, per_gen in table.items():
            for result in per_gen.values():
                if result.cores is not None:
                    assert result.cores == int(8 * result.factor)

    def test_invalid_generation_rejected(self):
        with pytest.raises(ConfigError):
            scaling_factor(get_app("Redis"), 4)


class TestCxlScaling:
    def test_cxl_factor_never_lower(self):
        # Adding CXL latency can only increase the required scaling.
        for app in table3_apps():
            plain = scaling_factor(app, 3).factor
            with_cxl = scaling_factor(app, 3, cxl=True).factor
            assert with_cxl >= plain

    def test_tolerant_app_unchanged(self):
        app = get_app("Redis")
        assert scaling_factor(app, 3, cxl=True).factor == scaling_factor(
            app, 3
        ).factor


class TestBatchedEquivalence:
    def test_table_matches_scalar_oracle(self, table):
        # The vectorized grid evaluation behind scaling_table must agree
        # cell-for-cell with the per-app scalar scaling_factor path.
        for app in table3_apps():
            for gen in (1, 2, 3):
                assert table[app.name][gen] == scaling_factor(app, gen)


class TestBatchedProbeRegression:
    """The batched feasibility probe inside scaling_factor must make the
    same decisions as the historical per-candidate meets_slo loop."""

    @pytest.mark.parametrize("method", ["analytic", "sim"])
    @pytest.mark.parametrize("cxl", [False, True])
    def test_matches_per_point_meets_slo(self, method, cxl):
        from repro.perf.latency import derive_slo, meets_slo
        from repro.perf.scaling import BASELINE_CORES

        lc_apps = [a for a in table3_apps() if a.latency_critical]
        for app in lc_apps:
            for gen in (1, 2, 3):
                slo = derive_slo(app, gen, BASELINE_CORES, method=method)
                expected = math.inf
                for cores in CANDIDATE_CORES:
                    if meets_slo(
                        app, slo, cores, cxl=cxl, method=method
                    ):
                        expected = cores / BASELINE_CORES
                        break
                got = scaling_factor(app, gen, cxl=cxl, method=method)
                assert got.factor == expected, (app.name, gen)
                assert got.slo == slo


class TestFactorsByApp:
    def test_includes_all_apps(self):
        factors = factors_by_app(generation=3)
        assert len(factors) == 20  # includes WebF-Mix

    def test_grid_values_only(self):
        for factor in factors_by_app(generation=3).values():
            assert factor in FACTOR_GRID or math.isinf(factor)

    def test_candidate_cores(self):
        assert CANDIDATE_CORES == (8, 10, 12)
