"""p99 behaviour: the paper's "we also measure 99th% latency and notice
similar behaviors" claim."""

import math

import pytest

from repro.perf.apps import get_app, table3_apps
from repro.perf.latency import peak_qps, tail_latency_ms
from repro.perf.mmc import response_percentile_ms


class TestP99Ordering:
    def test_p99_above_p95_everywhere(self):
        app = get_app("Xapian")
        peak = peak_qps(app, "gen3", 8)
        for frac in (0.3, 0.6, 0.9):
            p95 = tail_latency_ms(app, "gen3", 8, frac * peak, quantile=0.95)
            p99 = tail_latency_ms(app, "gen3", 8, frac * peak, quantile=0.99)
            assert p99 > p95


class TestP99ScalingFactors:
    @pytest.mark.parametrize(
        "app_name", ["Redis", "Masstree", "Xapian", "Moses", "Nginx", "Silo"]
    )
    def test_p99_slo_gives_same_factor(self, app_name):
        """Re-derive each scaling factor with a p99 SLO: "similar
        behaviors" means identical factors for the representative apps."""
        app = get_app(app_name)
        if not app.latency_critical:
            return

        def factor_at(quantile: float) -> float:
            base_peak = peak_qps(app, "gen3", 8)
            slo_load = 0.9 * base_peak
            slo = tail_latency_ms(
                app, "gen3", 8, slo_load, quantile=quantile
            )
            for cores in (8, 10, 12):
                latency = tail_latency_ms(
                    app, "bergamo", cores, slo_load, quantile=quantile
                )
                if latency <= slo * (1 + 1e-9):
                    return cores / 8
            return math.inf

        assert factor_at(0.99) == factor_at(0.95)


class TestQuantileMath:
    def test_percentiles_monotone_in_quantile(self):
        lam, mu, c = 700.0, 100.0, 8
        quantiles = (0.5, 0.9, 0.95, 0.99)
        values = [response_percentile_ms(q, lam, mu, c) for q in quantiles]
        assert values == sorted(values)
