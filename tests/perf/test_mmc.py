"""Analytic M/M/c model tests, cross-validated against the simulator."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import SimulationError
from repro.perf.mmc import (
    erlang_c,
    mean_response_ms,
    mean_wait_ms,
    response_percentile_ms,
    response_tail_probability,
)
from repro.perf.queueing import simulate_fcfs


class TestErlangC:
    def test_single_server_equals_rho(self):
        # For M/M/1, P(wait) = rho.
        assert erlang_c(1, 0.5) == pytest.approx(0.5)

    def test_zero_load(self):
        assert erlang_c(8, 0.0) == 0.0

    def test_monotone_in_load(self):
        values = [erlang_c(8, a) for a in (2.0, 4.0, 6.0, 7.5)]
        assert values == sorted(values)

    def test_unstable_rejected(self):
        with pytest.raises(SimulationError):
            erlang_c(4, 4.0)

    def test_known_value(self):
        # c=2, A=1 (rho=0.5): Pw = 1/3.
        assert erlang_c(2, 1.0) == pytest.approx(1 / 3)

    @given(
        cores=st.integers(min_value=1, max_value=64),
        rho=st.floats(min_value=0.01, max_value=0.98),
    )
    def test_probability_bounds(self, cores, rho):
        pw = erlang_c(cores, rho * cores)
        assert 0 <= pw <= 1


class TestResponseTail:
    def test_tail_at_zero_is_one(self):
        assert response_tail_probability(0.0, 500, 100, 8) == pytest.approx(1.0)

    def test_tail_decreasing(self):
        probs = [
            response_tail_probability(t, 500, 100, 8)
            for t in (1, 5, 10, 50)
        ]
        assert probs == sorted(probs, reverse=True)

    def test_negative_time(self):
        assert response_tail_probability(-1, 500, 100, 8) == 1.0

    def test_mm1_response_exponential(self):
        # M/M/1 response time is Exp(mu - lam).
        lam, mu = 50.0, 100.0
        t = 20.0
        expected = math.exp(-(mu - lam) * t / 1000.0)
        assert response_tail_probability(t, lam, mu, 1) == pytest.approx(
            expected, rel=1e-6
        )


class TestPercentiles:
    def test_percentile_inverts_tail(self):
        lam, mu, c = 700.0, 100.0, 8
        t95 = response_percentile_ms(0.95, lam, mu, c)
        assert response_tail_probability(t95, lam, mu, c) == pytest.approx(
            0.05, abs=1e-6
        )

    def test_saturated_is_infinite(self):
        assert math.isinf(response_percentile_ms(0.95, 800, 100, 8))

    def test_invalid_quantile(self):
        with pytest.raises(SimulationError):
            response_percentile_ms(1.5, 100, 100, 8)

    def test_p99_above_p95(self):
        lam, mu, c = 700.0, 100.0, 8
        assert response_percentile_ms(
            0.99, lam, mu, c
        ) > response_percentile_ms(0.95, lam, mu, c)

    @settings(deadline=None, max_examples=8)
    @given(
        rho=st.floats(min_value=0.3, max_value=0.9),
        cores=st.integers(min_value=1, max_value=12),
    )
    def test_matches_simulation(self, rho, cores):
        """The analytic p95 agrees with the DES within sampling noise."""
        mu = 1000.0  # 1 ms service
        lam = rho * cores * mu
        analytic = response_percentile_ms(0.95, lam, mu, cores)
        sim = simulate_fcfs(
            lam, cores, 1.0, cv=1.0, requests=60_000, warmup=10_000, seed=11
        )
        assert sim.p95_ms == pytest.approx(analytic, rel=0.12)


class TestArrayPaths:
    """The array entry points track the scalar reference element-wise."""

    def test_erlang_c_array_matches_scalar(self):
        cores = np.array([1, 2, 4, 8, 16, 3])
        loads = np.array([0.5, 1.0, 3.5, 7.9, 0.0, 2.2])
        batched = erlang_c(cores, loads)
        scalar = [
            erlang_c(int(c), float(a)) for c, a in zip(cores, loads)
        ]
        assert batched == pytest.approx(scalar, rel=1e-12, abs=1e-15)

    def test_erlang_c_array_unstable_rejected(self):
        with pytest.raises(SimulationError):
            erlang_c(np.array([4, 4]), np.array([2.0, 4.0]))

    def test_tail_probability_array_matches_scalar(self):
        t = np.array([0.5, 2.0, 10.0, -1.0])
        lam = np.array([100.0, 500.0, 700.0, 300.0])
        mu = np.array([200.0, 300.0, 100.0, 400.0])
        cores = np.array([1, 2, 8, 4])
        batched = response_tail_probability(t, lam, mu, cores)
        scalar = [
            response_tail_probability(
                float(ti), float(l), float(m), int(c)
            )
            for ti, l, m, c in zip(t, lam, mu, cores)
        ]
        assert batched == pytest.approx(scalar, rel=1e-12)

    def test_percentile_array_matches_scalar(self):
        lam = np.array([100.0, 500.0, 700.0, 1500.0])
        mu = np.array([200.0, 300.0, 100.0, 200.0])
        cores = np.array([1, 2, 8, 8])
        for q in (0.5, 0.9, 0.95, 0.99):
            batched = response_percentile_ms(q, lam, mu, cores)
            scalar = [
                response_percentile_ms(q, float(l), float(m), int(c))
                for l, m, c in zip(lam, mu, cores)
            ]
            assert batched == pytest.approx(scalar, rel=1e-9)

    def test_percentile_array_unstable_is_inf(self):
        out = response_percentile_ms(
            0.95, np.array([500.0, 900.0]), 100.0, 8
        )
        assert np.isfinite(out[0])
        assert math.isinf(out[1])

    def test_percentile_quantile_broadcasts(self):
        out = response_percentile_ms(
            np.array([0.5, 0.95, 0.99]), 700.0, 100.0, 8
        )
        assert out.shape == (3,)
        assert (np.diff(out) > 0).all()

    def test_percentile_array_bad_quantile_rejected(self):
        with pytest.raises(SimulationError):
            response_percentile_ms(np.array([0.5, 1.5]), 100.0, 100.0, 8)

    def test_shape_preserved(self):
        out = response_percentile_ms(
            0.95, np.full((2, 3), 300.0), 100.0, 8
        )
        assert out.shape == (2, 3)


class TestMonotonicity:
    """Hypothesis: percentiles are monotone in quantile and in load."""

    @settings(deadline=None, max_examples=50)
    @given(
        q1=st.floats(min_value=0.05, max_value=0.99),
        q2=st.floats(min_value=0.05, max_value=0.99),
        rho=st.floats(min_value=0.05, max_value=0.95),
        cores=st.integers(min_value=1, max_value=32),
    )
    def test_monotone_in_quantile(self, q1, q2, rho, cores):
        lo, hi = sorted((q1, q2))
        mu = 500.0
        lam = rho * cores * mu
        assert response_percentile_ms(
            lo, lam, mu, cores
        ) <= response_percentile_ms(hi, lam, mu, cores) * (1 + 1e-9)

    @settings(deadline=None, max_examples=50)
    @given(
        rho1=st.floats(min_value=0.02, max_value=0.98),
        rho2=st.floats(min_value=0.02, max_value=0.98),
        q=st.floats(min_value=0.05, max_value=0.99),
        cores=st.integers(min_value=1, max_value=32),
    )
    def test_monotone_in_load(self, rho1, rho2, q, cores):
        lo, hi = sorted((rho1, rho2))
        mu = 500.0
        assert response_percentile_ms(
            q, lo * cores * mu, mu, cores
        ) <= response_percentile_ms(q, hi * cores * mu, mu, cores) * (
            1 + 1e-9
        )


class TestSimCrossValidation:
    """DES vs analytic at cv=1 across the quantile range (ISSUE 6)."""

    @pytest.mark.parametrize(
        "quantile,tolerance",
        [(0.5, 0.05), (0.9, 0.08), (0.95, 0.1), (0.99, 0.2)],
    )
    def test_sim_matches_analytic_quantiles(self, quantile, tolerance):
        service_ms, cores, rho = 2.0, 4, 0.75
        mu = 1000.0 / service_ms
        lam = rho * cores * mu
        result = simulate_fcfs(
            lam, cores, service_ms, cv=1.0, requests=60_000,
            warmup=5_000, seed=11, quantiles=(quantile,),
        )
        analytic = response_percentile_ms(quantile, lam, mu, cores)
        assert result.quantiles_ms[0] == pytest.approx(
            analytic, rel=tolerance
        )


class TestMeans:
    def test_mean_wait_zero_load(self):
        assert mean_wait_ms(0, 100, 8) == 0.0

    def test_mean_wait_unstable_inf(self):
        assert math.isinf(mean_wait_ms(900, 100, 8))

    def test_mean_response_includes_service(self):
        # At very low load, response ~ service time.
        assert mean_response_ms(1.0, 100.0, 8) == pytest.approx(10.0, rel=0.01)

    def test_mm1_textbook(self):
        # M/M/1 rho=0.5: W = rho/(mu-lam) -> mean response 2/mu.
        assert mean_response_ms(50, 100, 1) == pytest.approx(20.0)
