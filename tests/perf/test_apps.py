"""Application profile tests."""

import pytest

from repro.core.errors import ConfigError
from repro.perf.apps import (
    APP_BY_NAME,
    APPLICATIONS,
    FLEET_CORE_HOUR_SHARE,
    AppClass,
    ApplicationProfile,
    apps_in_class,
    cxl_tolerant_core_hour_share,
    get_app,
    platform_for_generation,
    table3_apps,
)


class TestRegistry:
    def test_twenty_applications(self):
        # Section V: "we benchmark 20 open-source and closed-source
        # applications".
        assert len(APPLICATIONS) == 20

    def test_table3_has_nineteen_rows(self):
        # Table III omits WebF-Mix.
        assert len(table3_apps()) == 19

    def test_class_shares_match_table3(self):
        assert FLEET_CORE_HOUR_SHARE[AppClass.BIG_DATA] == 0.32
        assert FLEET_CORE_HOUR_SHARE[AppClass.WEB_APP] == 0.27
        assert FLEET_CORE_HOUR_SHARE[AppClass.RTC] == 0.24
        assert FLEET_CORE_HOUR_SHARE[AppClass.ML_INFERENCE] == 0.11
        assert FLEET_CORE_HOUR_SHARE[AppClass.WEB_PROXY] == 0.04
        assert FLEET_CORE_HOUR_SHARE[AppClass.DEVOPS] == 0.01

    def test_every_class_has_members(self):
        for app_class in AppClass:
            assert apps_in_class(app_class), app_class

    def test_four_production_webf_services(self):
        production = [a.name for a in APPLICATIONS if a.production]
        assert sorted(production) == [
            "WebF-Cold",
            "WebF-Dynamic",
            "WebF-Hot",
            "WebF-Mix",
        ]

    def test_get_app(self):
        assert get_app("Redis").app_class == AppClass.BIG_DATA

    def test_get_unknown_app(self):
        with pytest.raises(ConfigError):
            get_app("Memcached")

    def test_unique_names(self):
        assert len(APP_BY_NAME) == len(APPLICATIONS)


class TestSpeeds:
    def test_every_app_has_all_platforms(self):
        for app in APPLICATIONS:
            for platform in ("gen1", "gen2", "gen3", "bergamo"):
                assert app.speed_on(platform) > 0

    def test_gen3_is_reference(self):
        for app in APPLICATIONS:
            assert app.speed_on("gen3") == 1.0

    def test_gen1_never_faster_than_gen3(self):
        for app in APPLICATIONS:
            assert app.speed_on("gen1") <= 1.0

    def test_gen_progression(self):
        # Successive baseline generations get faster for every app.
        for app in APPLICATIONS:
            assert app.speed_on("gen1") <= app.speed_on("gen2") <= 1.0

    def test_unknown_platform_rejected(self):
        with pytest.raises(ConfigError):
            get_app("Redis").speed_on("gen4")

    def test_service_time_scales_inverse_speed(self):
        app = get_app("Moses")
        assert app.service_ms_on("bergamo") == pytest.approx(
            app.base_service_ms / app.speed_on("bergamo")
        )


class TestCxlBehaviour:
    def test_tolerant_apps_see_no_cxl_penalty(self):
        for app in APPLICATIONS:
            if app.cxl_tolerant:
                assert app.speed_on("bergamo", cxl=True) == app.speed_on(
                    "bergamo"
                )

    def test_non_tolerant_apps_slow_down(self):
        moses = get_app("Moses")
        assert moses.speed_on("bergamo", cxl=True) < moses.speed_on("bergamo")

    def test_moses_most_cxl_hurt_latency_app(self):
        # Fig. 8: Moses is the exemplar of a CXL-hurt application.
        latency_apps = [a for a in APPLICATIONS if a.latency_critical]
        worst = max(latency_apps, key=lambda a: a.cxl_slowdown)
        assert worst.name == "Moses"

    def test_haproxy_low_penalty(self):
        # Fig. 8: HAProxy loses ~11% peak throughput.
        assert get_app("HAProxy").cxl_slowdown == pytest.approx(1.11)

    def test_tolerant_share_near_paper(self):
        # Section VI: 20.2% of applications by fleet core-hours run fully
        # CXL-backed without penalty.
        assert cxl_tolerant_core_hour_share() == pytest.approx(0.202, abs=0.02)

    def test_cxl_slowdown_below_one_rejected(self):
        with pytest.raises(ConfigError):
            ApplicationProfile(
                name="bad",
                app_class=AppClass.WEB_PROXY,
                speed={"gen1": 1, "gen2": 1, "gen3": 1, "bergamo": 1},
                cxl_slowdown=0.9,
            )

    def test_tolerant_with_slowdown_rejected(self):
        with pytest.raises(ConfigError):
            ApplicationProfile(
                name="bad",
                app_class=AppClass.WEB_PROXY,
                speed={"gen1": 1, "gen2": 1, "gen3": 1, "bergamo": 1},
                cxl_slowdown=1.2,
                cxl_tolerant=True,
            )


class TestValidation:
    def test_missing_platform_rejected(self):
        with pytest.raises(ConfigError):
            ApplicationProfile(
                name="partial",
                app_class=AppClass.RTC,
                speed={"gen3": 1.0},
            )

    def test_platform_for_generation(self):
        assert platform_for_generation(1) == "gen1"
        assert platform_for_generation(3) == "gen3"

    def test_platform_for_bad_generation(self):
        with pytest.raises(ConfigError):
            platform_for_generation(4)

    def test_devops_not_latency_critical(self):
        for name in ("Build-Python", "Build-Wasm", "Build-PHP"):
            assert not get_app(name).latency_critical
