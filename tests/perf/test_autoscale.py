"""Autoscaler tests (Section VIII future-work feature)."""

import numpy as np
import pytest

from repro.core.errors import ConfigError
from repro.perf.apps import get_app
from repro.perf.autoscale import (
    AutoscaleResult,
    autoscale,
    cores_needed,
    diurnal_load,
)
from repro.perf.latency import derive_slo


class TestDiurnalLoad:
    def test_shape(self):
        load = diurnal_load(1000.0, hours=48)
        assert len(load) == 48
        assert load.max() <= 1000.0 + 1e-9
        assert load.min() >= 0.35 * 1000.0 * 0.99

    def test_invalid_peak(self):
        with pytest.raises(ConfigError):
            diurnal_load(0.0)


class TestCoresNeeded:
    def test_monotone_in_load(self):
        app = get_app("Xapian")
        slo = derive_slo(app, 3)
        low = cores_needed(app, "bergamo", 500.0, slo)
        high = cores_needed(app, "bergamo", 1500.0, slo)
        assert high >= low

    def test_infeasible_returns_none(self):
        # Regression: this used to return max_cores, silently passing
        # off an infeasible sizing as a valid answer.
        app = get_app("Xapian")
        slo = derive_slo(app, 3)
        assert cores_needed(app, "bergamo", 1e9, slo, max_cores=16) is None

    def test_invalid_core_range_rejected(self):
        app = get_app("Xapian")
        slo = derive_slo(app, 3)
        with pytest.raises(ConfigError):
            cores_needed(app, "bergamo", 500.0, slo, min_cores=8, max_cores=4)


class TestAutoscale:
    @pytest.fixture(scope="class")
    def result(self):
        return autoscale(get_app("Xapian"))

    def test_saves_core_hours(self, result):
        # The whole point of the Section VIII opportunity.
        assert result.core_hour_savings > 0.1

    def test_never_exceeds_static(self, result):
        assert result.core_hours_autoscaled <= result.core_hours_static

    def test_few_violations_on_smooth_load(self, result):
        # A diurnal ramp is slow; the one-epoch lag should rarely miss.
        assert result.slo_violation_hours <= 2

    def test_allocation_follows_load(self, result):
        cores = np.asarray(result.cores_by_hour, dtype=float)
        assert cores.max() > cores.min()

    def test_step_load_causes_violations(self):
        # A load step exposes the reactive lag.
        app = get_app("Xapian")
        slo = derive_slo(app, 3)
        low = 0.2 * slo.baseline_peak_qps
        high = 0.85 * slo.baseline_peak_qps
        load = [low] * 10 + [high] * 10
        result = autoscale(app, load=load)
        assert result.slo_violation_hours >= 1

    def test_invalid_load_rejected(self):
        with pytest.raises(ConfigError):
            autoscale(get_app("Xapian"), load=[0.0, 100.0])

    def test_no_infeasible_hours_on_diurnal_load(self, result):
        assert result.infeasible_hours == 0

    def test_infeasible_hours_surface_and_count_as_violations(self):
        # Regression: hours whose sizing exceeds max_cores used to be
        # silently allocated max_cores with no signal at all.
        app = get_app("Xapian")
        slo = derive_slo(app, 3)
        load = [0.5 * slo.baseline_peak_qps] * 3 + [
            50.0 * slo.baseline_peak_qps
        ] * 2
        result = autoscale(app, load=load, max_cores=8)
        assert result.infeasible_hours >= 1
        assert result.slo_violation_hours >= result.infeasible_hours
        # Best-effort allocation stays within the cap.
        assert max(result.cores_by_hour) <= 8
