"""Simulation-mode latency paths (non-exponential service, Fig. 7 via DES)."""

import dataclasses
import math

import pytest

from repro.perf.apps import get_app
from repro.perf.latency import derive_slo, latency_curve, meets_slo
from repro.perf.scaling import scaling_factor


class TestSimCurves:
    def test_sim_curve_shape(self):
        app = get_app("Nginx")
        curve = latency_curve(
            app, "gen3", 8, load_fractions=(0.3, 0.6, 0.9), method="sim"
        )
        assert curve.p95_ms[0] < curve.p95_ms[-1]

    def test_sim_curve_deterministic(self):
        app = get_app("Nginx")
        a = latency_curve(app, "gen3", 8, load_fractions=(0.5,), method="sim")
        b = latency_curve(app, "gen3", 8, load_fractions=(0.5,), method="sim")
        assert a.p95_ms == b.p95_ms

    def test_heavy_tailed_service_raises_tail(self):
        """A service-time CV of 2 (lognormal) produces a heavier p95 than
        the exponential at the same mean and load."""
        app = get_app("Nginx")
        heavy = dataclasses.replace(app, service_cv=2.0)
        load = 0.7 * 8 / (app.base_service_ms / 1000.0)
        from repro.perf.latency import tail_latency_ms

        exp_tail = tail_latency_ms(app, "gen3", 8, load, method="sim")
        heavy_tail = tail_latency_ms(heavy, "gen3", 8, load, method="sim")
        assert heavy_tail > exp_tail

    def test_sim_slo_derivation(self):
        app = get_app("Xapian")
        slo = derive_slo(app, 3, method="sim")
        assert slo.latency_ms > 0
        assert slo.load_qps == pytest.approx(
            0.9 * slo.baseline_peak_qps
        )


class TestSimScaling:
    @pytest.mark.parametrize("app_name", ["Redis", "Silo"])
    def test_sim_factors_match_analytic_clear_cases(self, app_name):
        """The DES and the analytic model agree on Table III factors for
        cases far from the grid thresholds (Redis: equal speed -> 1;
        Silo: collapsed speed -> >1.5)."""
        app = get_app(app_name)
        analytic = scaling_factor(app, 3, method="analytic").factor
        sim = scaling_factor(app, 3, method="sim").factor
        assert sim == analytic or (
            math.isinf(sim) and math.isinf(analytic)
        )

    def test_sim_factor_near_boundary_adjacent(self):
        """Xapian's 1.5 sits near the SLO boundary: the DES may land on
        the same factor or the adjacent outcome, never below 1.5."""
        app = get_app("Xapian")
        sim = scaling_factor(app, 3, method="sim").factor
        assert sim == 1.5 or math.isinf(sim)
