"""Artifact export tests."""

import pytest

from repro.core.errors import ConfigError
from repro.experiments.export import FAST_EXPERIMENT_IDS, export_experiments


class TestExport:
    def test_exports_selected_experiments(self, tmp_path):
        written = export_experiments(
            tmp_path, experiment_ids=["table1", "table2", "fig2"]
        )
        assert set(written) == {"table1", "table2", "fig2"}
        assert (tmp_path / "table1.txt").exists()
        # fig2 also exports a CSV series.
        assert (tmp_path / "fig2.csv").exists()

    def test_text_artifacts_nonempty(self, tmp_path):
        written = export_experiments(tmp_path, experiment_ids=["table4"])
        for files in written.values():
            for path in files:
                assert path.read_text().strip()

    def test_unknown_id_rejected(self, tmp_path):
        with pytest.raises(ConfigError):
            export_experiments(tmp_path, experiment_ids=["fig99"])

    def test_fast_set_has_no_trace_experiments(self):
        assert "fig9" not in FAST_EXPERIMENT_IDS
        assert "fig11" not in FAST_EXPERIMENT_IDS

    def test_creates_directory(self, tmp_path):
        target = tmp_path / "nested" / "out"
        export_experiments(target, experiment_ids=["table1"])
        assert (target / "table1.txt").exists()


class TestCliExport:
    def test_cli_export_fast_subset(self, tmp_path, capsys, monkeypatch):
        from repro import cli
        import repro.experiments.export as export_mod

        monkeypatch.setattr(
            export_mod, "FAST_EXPERIMENT_IDS", ("table1", "table2")
        )
        code = cli.main(["export", "--out", str(tmp_path)])
        assert code == 0
        assert "exported 2 experiments" in capsys.readouterr().out
