"""Validation-report experiment tests."""

import pytest

from repro.experiments import validation


@pytest.fixture(scope="module")
def checks():
    return validation.run()


class TestValidationReport:
    def test_all_anchors_pass(self, checks):
        failing = [c.claim for c in checks if not c.passed]
        assert failing == []

    def test_covers_worked_example(self, checks):
        claims = [c.claim for c in checks]
        assert any("server power" in c for c in claims)
        assert any("per-core" in c for c in claims)

    def test_covers_table8(self, checks):
        assert sum(1 for c in checks if c.claim.startswith("Table VIII")) == 4

    def test_covers_maintenance(self, checks):
        assert any("AFR" in c.claim for c in checks)

    def test_render_marks_all_pass(self, checks):
        text = validation.render(checks)
        assert "FAIL" not in text
        assert f"{len(checks)}/{len(checks)}" in text
