"""Determinism of the parallel runner and result cache.

The contract the experiments rely on: fanning a trace suite out over
worker processes, or replaying it through the on-disk result cache, must
produce byte-identical ``Fig9Result``/``Fig10Result`` values to the
serial, uncached path.
"""

from __future__ import annotations

import pytest

from repro.allocation.traces import TraceParams, production_trace_suite
from repro.core.runner import DiskCache
from repro.experiments import fig9_packing, fig10_memutil


@pytest.fixture(scope="module")
def tiny_suite():
    """A small trace suite keeping the end-to-end runs fast."""
    return production_trace_suite(
        count=2,
        params=TraceParams(duration_days=4.0, mean_concurrent_vms=80),
    )


class TestFig9Determinism:
    def test_parallel_matches_serial(self, tiny_suite):
        serial = fig9_packing.run(traces=tiny_suite, jobs=1)
        parallel = fig9_packing.run(traces=tiny_suite, jobs=2)
        assert parallel == serial

    def test_cached_matches_uncached(self, tiny_suite, tmp_path):
        uncached = fig9_packing.run(traces=tiny_suite, jobs=1)
        cache = DiskCache(tmp_path)
        cold = fig9_packing.run(traces=tiny_suite, jobs=1, cache=cache)
        warm = fig9_packing.run(traces=tiny_suite, jobs=1, cache=cache)
        assert cold == uncached
        assert warm == uncached
        assert cache.misses == len(tiny_suite)
        assert cache.hits == len(tiny_suite)


class TestFig10Determinism:
    def test_parallel_matches_serial(self, tiny_suite):
        serial = fig10_memutil.run(traces=tiny_suite, jobs=1)
        parallel = fig10_memutil.run(traces=tiny_suite, jobs=2)
        assert parallel == serial

    def test_cached_matches_uncached(self, tiny_suite, tmp_path):
        uncached = fig10_memutil.run(traces=tiny_suite, jobs=1)
        cache = DiskCache(tmp_path)
        cold = fig10_memutil.run(traces=tiny_suite, jobs=1, cache=cache)
        warm = fig10_memutil.run(traces=tiny_suite, jobs=1, cache=cache)
        assert cold == uncached
        assert warm == uncached
        assert cache.hits == len(tiny_suite)

    def test_cache_key_distinguishes_traces(self, tiny_suite, tmp_path):
        """Different traces must never collide on a cache entry."""
        cache = DiskCache(tmp_path)
        full = fig10_memutil.run(traces=tiny_suite, jobs=1, cache=cache)
        flipped = fig10_memutil.run(
            traces=list(reversed(tiny_suite)), jobs=1, cache=cache
        )
        assert flipped.green_utilization == list(
            reversed(full.green_utilization)
        )
