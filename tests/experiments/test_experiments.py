"""Experiment harness tests: every paper artifact regenerates.

Heavy experiments run with reduced trace counts/sizes; the benchmark
harness runs the full-size versions.
"""

import math

import numpy as np
import pytest

from repro.experiments import (
    end_to_end,
    fig1_breakdown,
    fig2_failures,
    fig7_latency,
    fig8_cxl,
    fig9_packing,
    fig10_memutil,
    fig11_cluster_savings,
    section5_maintenance,
    section7_alternatives,
    section7_tco,
    table1_cpus,
    table2_devops,
    table3_scaling,
    table4_savings,
)
from repro.experiments.registry import EXPERIMENTS, get_experiment, run_all
from repro.core.errors import ConfigError


class TestRegistry:
    def test_seventeen_experiments(self):
        assert len(EXPERIMENTS) == 17

    def test_lookup(self):
        assert get_experiment("fig11").module is fig11_cluster_savings

    def test_unknown_rejected(self):
        with pytest.raises(ConfigError):
            get_experiment("fig99")

    def test_all_have_run_and_render(self):
        for exp in EXPERIMENTS.values():
            assert hasattr(exp.module, "run")
            assert hasattr(exp.module, "render")
            assert hasattr(exp.module, "main")


class TestFig1:
    def test_headline_shares(self):
        result = fig1_breakdown.run()
        assert result.operational_share == pytest.approx(0.58, abs=0.05)
        assert result.compute_share == pytest.approx(0.57, abs=0.05)

    def test_render(self):
        text = fig1_breakdown.render(fig1_breakdown.run())
        assert "compute" in text and "dram" in text


class TestFig2:
    def test_flat_steady_state(self):
        result = fig2_failures.run()
        assert abs(result.steady_slope_per_month) < 0.005
        assert result.steady_mean == pytest.approx(1.0, abs=0.1)

    def test_csv_has_84_rows(self):
        csv = fig2_failures.to_csv(fig2_failures.run())
        assert len(csv.splitlines()) == 85  # header + 84 months


class TestTable1:
    def test_rows(self):
        result = table1_cpus.run()
        assert result.rows[0] == ("Cores per socket", 128, 64, 64, 80)
        assert "Bergamo" in table1_cpus.render(result)


class TestFig7:
    @pytest.fixture(scope="class")
    def panels(self):
        return fig7_latency.run()

    def test_five_panels(self, panels):
        assert [p.app_name for p in panels] == list(fig7_latency.FIG7_APPS)

    def test_masstree_cannot_meet_slo(self, panels):
        masstree = next(p for p in panels if p.app_name == "Masstree")
        assert not masstree.meets_slo

    def test_xapian_meets_with_12(self, panels):
        xapian = next(p for p in panels if p.app_name == "Xapian")
        assert xapian.green_cores_needed == 12

    def test_curves_cover_load_axis(self, panels):
        for panel in panels:
            assert len(panel.baseline_curve.qps) == len(
                fig7_latency.LOAD_FRACTIONS
            )

    def test_csv_parses(self, panels):
        csv = fig7_latency.to_csv(panels)
        assert csv.splitlines()[0] == "app,curve,qps,p95_ms"


class TestFig8:
    @pytest.fixture(scope="class")
    def panels(self):
        return fig8_cxl.run()

    def test_moses_more_impacted_than_haproxy(self, panels):
        moses = next(p for p in panels if p.app_name == "Moses")
        haproxy = next(p for p in panels if p.app_name == "HAProxy")
        assert moses.peak_reduction > haproxy.peak_reduction

    def test_haproxy_peak_reduction_near_11pct(self, panels):
        haproxy = next(p for p in panels if p.app_name == "HAProxy")
        assert haproxy.peak_reduction == pytest.approx(0.11, abs=0.03)

    def test_moses_fails_slo_before_slo_load(self, panels):
        moses = next(p for p in panels if p.app_name == "Moses")
        assert moses.cxl_slo_load_qps < moses.slo.load_qps

    def test_haproxy_meets_slo_over_most_of_range(self, panels):
        haproxy = next(p for p in panels if p.app_name == "HAProxy")
        assert haproxy.cxl_slo_load_qps > 0.8 * haproxy.slo.load_qps


class TestTable2:
    def test_exact_reproduction(self):
        result = table2_devops.run()
        assert result.max_abs_error() < 0.005


class TestTable3:
    def test_all_cells_match(self):
        result = table3_scaling.run()
        assert result.mismatches() == []
        assert result.matched_cells == 57


class TestTable4:
    def test_within_tolerance(self):
        result = table4_savings.run()
        assert result.max_abs_deviation_points <= 1

    def test_render_mentions_deviations(self):
        text = table4_savings.render(table4_savings.run())
        assert "deviation" in text


class TestFig9:
    @pytest.fixture(scope="class")
    def result(self):
        return fig9_packing.run(trace_count=4, mean_concurrent_vms=120)

    def test_memory_core_tradeoff(self, result):
        # Fig. 9: GreenSKU-Full packs memory better and cores worse.
        s = result.summary()
        assert s["green_memory_median"] > s["baseline_memory_median"]
        assert s["green_core_median"] < s["baseline_core_median"]

    def test_point_per_trace(self, result):
        assert len(result.baseline_points) == 4
        assert len(result.green_points) == 4

    def test_csv(self, result):
        csv = fig9_packing.to_csv(result)
        assert len(csv.splitlines()) == 1 + 8


class TestFig10:
    @pytest.fixture(scope="class")
    def result(self):
        return fig10_memutil.run(trace_count=4, mean_concurrent_vms=120)

    def test_most_traces_below_60pct(self, result):
        assert result.share_below_60pct >= 0.75

    def test_few_traces_need_cxl(self, result):
        # Paper: only ~3% of traces cross into the CXL region.
        assert result.share_needing_cxl <= 0.25

    def test_boundary_is_75pct(self, result):
        assert result.cxl_boundary == pytest.approx(0.75)


class TestFig11:
    @pytest.fixture(scope="class")
    def result(self):
        return fig11_cluster_savings.run(
            mean_concurrent_vms=300, intensities=[0.0, 0.1, 0.3]
        )

    def test_full_wins_clean_grid(self, result):
        assert result.best_at(0.0) == "GreenSKU-Full"

    def test_savings_positive_modulo_granularity(self, result):
        # At this reduced trace scale (~25 servers) integer server counts
        # can push a point fractionally negative; the full-scale benchmark
        # run keeps every point positive.  The best SKU per point must
        # still clearly save carbon.
        for point in result.points:
            assert point.best_sku()[1] > 0.02
            for savings in point.savings_by_sku.values():
                assert savings > -0.02

    def test_average_in_paper_band(self, result):
        # Artifact Fig. 12: average cluster savings ~14%; we land in a
        # wide band around it.
        avg = result.average_savings("GreenSKU-Full")
        assert 0.04 < avg < 0.25

    def test_regions_annotated(self, result):
        assert len(result.regions) == 3


class TestSection5:
    def test_negligible_overhead(self):
        result = section5_maintenance.run()
        assert abs(result.overhead_delta) < 0.1


class TestSection7:
    def test_alternatives(self):
        result = section7_alternatives.run()
        assert result.report.lifetime_years > 6

    def test_tco_within_band(self):
        result = section7_tco.run()
        assert result.within_paper_band


class TestEndToEnd:
    @pytest.fixture(scope="class")
    def result(self):
        return end_to_end.run(mean_concurrent_vms=300)

    def test_chain_ordering(self, result):
        # Each accounting level gives up some savings: per-core >
        # cluster > DC.
        assert (
            result.per_core_savings
            > result.cluster_savings
            > result.dc_savings
            > 0
        )

    def test_per_core_near_paper(self, result):
        # Open data: 26%.
        assert result.per_core_savings == pytest.approx(0.26, abs=0.02)

    def test_render(self, result):
        assert "per-core savings" in end_to_end.render(result)
