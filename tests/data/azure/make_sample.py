"""Regenerate the bundled Azure vmtable sample (deterministic).

The committed ``vmtable_sample.csv.gz`` is a small, deterministically
*synthesized* stand-in for an AzurePublicDataset vmtable shard: same
headerless 11-field schema, second-granularity timestamps, bucketed
core/memory shapes, and the three vmcategory labels.  It intentionally

- starts mid-day (first creation at 19 800 s = 5.5 h) so replay
  exercises the offset-window path, not the t=0 fast path;
- contains duplicate VM ids, rows with blank required fields, an
  unknown-bucket row, and locally out-of-order rows, so ingestion's
  row-level degradation is exercised by every consumer of the sample;
- is gzipped with ``mtime=0`` so the bytes (and hence the source
  content digest and every golden trace digest derived from it) are
  identical on every regeneration.

Run from the repo root::

    python tests/data/azure/make_sample.py
"""

from __future__ import annotations

import csv
import gzip
import io
import random
from pathlib import Path

OUT = Path(__file__).parent / "vmtable_sample.csv.gz"

START_SECONDS = 19_800  # 5.5 h: the capture opens mid-day
SPAN_SECONDS = 72 * 3600
N_VMS = 420

CORE_BUCKETS = ["1", "2", "2", "4", "4", "4", "8", "8", "16", "24", ">24"]
MEMORY_BUCKETS = [
    "2", "4", "8", "8", "16", "16", "32", "32", "64", "70", ">64",
]
CATEGORIES = [
    "Interactive", "Interactive", "Delay-insensitive",
    "Delay-insensitive", "Unknown", "",
]


def rows() -> list:
    rng = random.Random(20240731)
    out = []
    for i in range(N_VMS):
        vmid = f"vm-{rng.getrandbits(48):012x}"
        created = START_SECONDS + int(rng.random() ** 1.4 * SPAN_SECONDS)
        # Mixed lifetimes: mostly hours, a long-lived tail, and ~4%
        # still alive at capture end (blank vmdeleted).
        if rng.random() < 0.04:
            deleted = ""
        elif rng.random() < 0.15:
            deleted = created + int(rng.uniform(48, 400) * 3600)
        else:
            deleted = created + int(rng.uniform(0.05, 24) * 3600)
        maxcpu = round(rng.uniform(5, 100), 2)
        avgcpu = round(maxcpu * rng.uniform(0.1, 0.8), 2)
        p95 = round(maxcpu * rng.uniform(0.6, 1.0), 2)
        out.append(
            [
                vmid,
                f"sub-{rng.randrange(40):04d}",
                f"dep-{rng.randrange(120):05d}",
                created,
                deleted,
                maxcpu,
                avgcpu,
                p95,
                rng.choice(CATEGORIES),
                rng.choice(CORE_BUCKETS),
                rng.choice(MEMORY_BUCKETS),
            ]
        )
    # Adversarial edges the parser must degrade over, not die on:
    out.append(list(out[3]))  # exact duplicate VM id
    dup = list(out[10])
    dup[3] = int(dup[3]) + 600  # same id, different timestamps
    out.append(dup)
    blank = list(out[20])
    blank[9] = ""  # blank core bucket
    out.append(blank)
    unknown = list(out[30])
    unknown[10] = "9999"  # bucket outside the catalog domain
    out.append(unknown)
    # Shuffle a local window so arrivals are not globally sorted.
    rng.shuffle(out[40:60])
    return out


def main() -> None:
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerows(rows())
    payload = buffer.getvalue().encode("utf-8")
    with open(OUT, "wb") as raw:
        with gzip.GzipFile(fileobj=raw, mode="wb", mtime=0) as gz:
            gz.write(payload)
    print(f"wrote {OUT} ({OUT.stat().st_size} bytes)")


if __name__ == "__main__":
    main()
