"""Execute every fenced ``python`` block in docs/*.md.

Documentation examples rot silently; this test keeps them honest.  All
`````python`` blocks in one page execute cumulatively in a single
namespace (so a later block can build on an earlier one's imports and
variables), with the working directory pointed at a temp dir so
examples that write files never litter the repo.

Pages with no python blocks are skipped, not failed — bash-only pages
are legitimate.
"""

import pathlib
import re

import pytest

DOCS_DIR = pathlib.Path(__file__).parent.parent / "docs"

_FENCE = re.compile(
    r"^```python[ \t]*\n(.*?)^```[ \t]*$", re.MULTILINE | re.DOTALL
)


def _python_blocks(page: pathlib.Path):
    return [m.group(1) for m in _FENCE.finditer(page.read_text())]


PAGES = sorted(DOCS_DIR.glob("*.md"))


def test_docs_exist():
    assert PAGES, "docs/ pages disappeared"
    assert any(_python_blocks(p) for p in PAGES), (
        "no python examples found in any docs page; the example runner "
        "is vacuous — check the fence regex against the docs"
    )


@pytest.mark.parametrize("page", PAGES, ids=[p.name for p in PAGES])
def test_examples_execute(page, tmp_path, monkeypatch):
    blocks = _python_blocks(page)
    if not blocks:
        pytest.skip(f"{page.name} has no python examples")
    monkeypatch.chdir(tmp_path)
    namespace = {"__name__": f"docs_example_{page.stem}"}
    for i, block in enumerate(blocks, start=1):
        try:
            exec(compile(block, f"{page.name}[block {i}]", "exec"), namespace)
        except Exception as exc:  # pragma: no cover - failure reporting
            pytest.fail(
                f"{page.name} python block {i} raised "
                f"{type(exc).__name__}: {exc}\n--- block ---\n{block}"
            )
