"""CLI tests for ``repro sweep`` and ``repro catalog ...``."""

import json

import pytest

from repro.cli import main

AXES = [
    "--rules", "carbon-aware,always",
    "--vms", "30",
    "--days", "0.5",
    "--seed", "3",
]


@pytest.fixture()
def dirs(tmp_path, monkeypatch):
    """Isolated cache/catalog dirs so tests never touch a real cache."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.setenv("REPRO_CATALOG_DIR", str(tmp_path / "catalog"))
    return tmp_path


class TestSweep:
    def test_cold_then_warm(self, dirs, capsys):
        assert main(["sweep"] + AXES) == 0
        out = capsys.readouterr().out
        assert "scenario sweep (2 points)" in out
        assert "2 recomputed, 0 warm" in out
        assert main(["sweep"] + AXES) == 0
        out = capsys.readouterr().out
        assert "0 recomputed, 2 warm" in out

    def test_mutated_input_reports_cone(self, dirs, capsys):
        assert main(["sweep"] + AXES) == 0
        capsys.readouterr()
        mutated = list(AXES)
        mutated[mutated.index("3")] = "4"  # --seed 3 -> 4
        assert main(["sweep"] + mutated) == 0
        out = capsys.readouterr().out
        assert "changed inputs: trace/synthetic" in out
        assert "invalidated 3 artifacts" in out
        assert "2 recomputed" in out

    def test_gc_flag_drops_stale_entries(self, dirs, capsys):
        assert main(["sweep"] + AXES) == 0
        mutated = list(AXES)
        mutated[mutated.index("3")] = "4"
        assert main(["sweep", "--gc"] + mutated) == 0
        out = capsys.readouterr().out
        assert "gc: removed 3 stale catalog entries" in out

    def test_bad_axis_value_is_config_error(self, dirs, capsys):
        assert main(["sweep", "--cxl", "three"]) == 2
        assert "--cxl" in capsys.readouterr().err

    def test_unknown_sku_is_config_error(self, dirs, capsys):
        assert main(["sweep", "--skus", "MegaSKU"]) == 2
        assert "unknown SKU" in capsys.readouterr().err

    def test_catalog_dir_flag_overrides_env(self, dirs, capsys):
        target = dirs / "elsewhere"
        assert (
            main(["sweep", "--catalog-dir", str(target)] + AXES) == 0
        )
        assert "elsewhere" in capsys.readouterr().out
        assert len(list(target.glob("*.json.gz"))) == 3  # 2 points + summary


class TestCatalogSubcommands:
    def test_build_then_query(self, dirs, capsys):
        assert main(["catalog", "build"] + AXES) == 0
        capsys.readouterr()
        assert main(["catalog", "query"] + AXES) == 0
        out = capsys.readouterr().out
        assert "catalog query: 2/2 warm" in out
        assert "(miss)" not in out

    def test_query_misses_exit_3(self, dirs, capsys):
        assert main(["catalog", "query"] + AXES) == 3
        out = capsys.readouterr().out
        assert "0/2 warm" in out
        assert "(miss)" in out

    def test_gc_keeps_live_closure(self, dirs, capsys):
        assert main(["catalog", "build"] + AXES) == 0
        stale = list(AXES)
        stale[stale.index("3")] = "4"
        assert main(["catalog", "build"] + stale) == 0
        capsys.readouterr()
        assert main(["catalog", "gc"] + stale) == 0
        out = capsys.readouterr().out
        assert "removed 3/6" in out
        # The surviving grid still answers warm.
        assert main(["catalog", "query"] + stale) == 0

    def test_stats_prints_manifest(self, dirs, capsys):
        assert main(["catalog", "build"] + AXES) == 0
        capsys.readouterr()
        assert main(["catalog", "stats"]) == 0
        manifest = json.loads(capsys.readouterr().out)
        assert manifest["schema"] == "repro-catalog/1"
        assert manifest["entries"] == 3


class TestProvenanceFlag:
    def test_sweep_writes_provenance_log(self, dirs, capsys):
        log_path = dirs / "prov.jsonl"
        assert (
            main(["--provenance", str(log_path), "sweep"] + AXES) == 0
        )
        lines = [
            json.loads(line)
            for line in log_path.read_text().splitlines()
        ]
        ids = {line["artifact_id"] for line in lines}
        assert "sweep/summary" in ids
        assert any(i.startswith("point/") for i in ids)

    def test_run_all_records_experiments(self, dirs, capsys):
        log_path = dirs / "prov.jsonl"
        assert (
            main(["--provenance", str(log_path), "run", "table1"]) == 0
        )
        # `repro run` goes through the single-experiment path; the
        # registry hook covers run-all. Either way the flag must not
        # break the command; record presence is asserted for run-all's
        # hook in tests/core/test_provenance.py.
        assert main(["--provenance", str(log_path), "savings"]) == 0

    def test_auto_path_under_cache_dir(self, dirs, capsys):
        assert main(["--provenance", "auto", "sweep"] + AXES) == 0
        assert (dirs / "cache" / "provenance.jsonl").exists()
