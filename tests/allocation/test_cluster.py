"""Cluster simulation tests."""

import pytest

from repro.allocation.cluster import (
    ClusterSpec,
    adopt_everything,
    adopt_nothing,
    simulate,
)
from repro.allocation.traces import TraceParams, VmTrace, generate_trace
from repro.allocation.vm import VmRequest
from repro.core.errors import CapacityError, ConfigError
from repro.hardware.sku import baseline_gen3, greensku_full


def tiny_trace(vms):
    return VmTrace(name="tiny", params=TraceParams(duration_days=1), vms=tuple(vms))


def make_vm(vm_id, arrival=0.0, lifetime=5.0, cores=8, memory=32.0, **kw):
    base = dict(
        vm_id=vm_id,
        arrival_hours=arrival,
        lifetime_hours=lifetime,
        cores=cores,
        memory_gb=memory,
        generation=3,
        app_name="Redis",
    )
    base.update(kw)
    return VmRequest(**base)


class TestClusterSpec:
    def test_counts(self):
        spec = ClusterSpec.of((baseline_gen3(), 3), (greensku_full(), 2))
        assert spec.total_servers == 5
        assert spec.baseline_servers == 3
        assert spec.green_servers == 2

    def test_build_servers_unique_ids(self):
        spec = ClusterSpec.of((baseline_gen3(), 3), (greensku_full(), 2))
        ids = [s.server_id for s in spec.build_servers()]
        assert len(set(ids)) == 5

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            ClusterSpec(skus=())

    def test_negative_count_rejected(self):
        with pytest.raises(ConfigError):
            ClusterSpec.of((baseline_gen3(), -1))

    def test_negative_count_rejected_in_any_position(self):
        with pytest.raises(ConfigError):
            ClusterSpec.of((baseline_gen3(), 3), (greensku_full(), -2))


class TestSimulateBasics:
    def test_all_placed_when_capacity_suffices(self):
        trace = tiny_trace([make_vm(i) for i in range(5)])
        out = simulate(trace, ClusterSpec.of((baseline_gen3(), 2)))
        assert out.placed_vms == 5
        assert out.feasible

    def test_rejection_recorded(self):
        # 11 concurrent 8-core VMs need 88 cores; one 80-core server
        # rejects at least one.
        trace = tiny_trace([make_vm(i, lifetime=24.0) for i in range(11)])
        out = simulate(trace, ClusterSpec.of((baseline_gen3(), 1)))
        assert not out.feasible
        assert len(out.rejected_vms) == 1

    def test_raise_on_reject(self):
        trace = tiny_trace([make_vm(i, lifetime=24.0) for i in range(11)])
        with pytest.raises(CapacityError):
            simulate(
                trace,
                ClusterSpec.of((baseline_gen3(), 1)),
                raise_on_reject=True,
            )

    def test_departures_free_capacity(self):
        # Sequential VMs that never overlap all fit one server.
        vms = [
            make_vm(i, arrival=float(i), lifetime=0.5, cores=80, memory=768.0)
            for i in range(5)
        ]
        out = simulate(tiny_trace(vms), ClusterSpec.of((baseline_gen3(), 1)))
        assert out.feasible

    def test_invalid_snapshot_interval(self):
        trace = tiny_trace([make_vm(1)])
        with pytest.raises(ConfigError):
            simulate(trace, ClusterSpec.of((baseline_gen3(), 1)),
                     snapshot_hours=0)


class TestAdoptionRouting:
    def test_adopt_nothing_keeps_greens_empty(self):
        trace = tiny_trace([make_vm(i) for i in range(4)])
        spec = ClusterSpec.of((baseline_gen3(), 1), (greensku_full(), 1))
        out = simulate(trace, spec, adoption=adopt_nothing)
        assert out.green_placements == 0

    def test_adopt_everything_prefers_green(self):
        trace = tiny_trace([make_vm(i) for i in range(4)])
        spec = ClusterSpec.of((baseline_gen3(), 1), (greensku_full(), 1))
        out = simulate(trace, spec, adoption=adopt_everything)
        assert out.green_placements == 4

    def test_fungible_fallback_to_baseline(self):
        # Green capacity for 16 cores only; the rest overflow to baseline.
        vms = [make_vm(i, cores=64, memory=256.0, lifetime=24.0)
               for i in range(3)]
        spec = ClusterSpec.of((baseline_gen3(), 2), (greensku_full(), 1))
        out = simulate(tiny_trace(vms), spec, adoption=adopt_everything)
        assert out.feasible
        assert out.fallback_placements >= 1

    def test_scaling_applied_on_green(self):
        # A VM scaled 1.5x (12 cores) fills a 12-core gap differently.
        def adoption(app, gen):
            return 1.5

        vms = [make_vm(i, cores=80, memory=320.0, lifetime=24.0)
               for i in range(1)]
        spec = ClusterSpec.of((greensku_full(), 1))
        out = simulate(tiny_trace(vms), spec, adoption=adoption)
        assert out.feasible
        # 80 * 1.5 = 120 cores on the 128-core GreenSKU.
        assert out.green_placements == 1

    def test_full_node_vm_only_on_baseline(self):
        vm = make_vm(1, cores=80, memory=768.0, lifetime=24.0, full_node=True)
        spec = ClusterSpec.of((greensku_full(), 2))
        out = simulate(tiny_trace([vm]), spec, adoption=adopt_everything)
        assert not out.feasible


class TestSnapshots:
    def test_snapshot_stats_populated(self):
        trace = generate_trace(
            seed=2, params=TraceParams(duration_days=2, mean_concurrent_vms=40)
        )
        spec = ClusterSpec.of((baseline_gen3(), 10))
        out = simulate(trace, spec, snapshot_hours=4.0)
        assert out.baseline_stats.samples > 0
        assert 0 < out.baseline_stats.mean_core_density <= 1

    def test_green_and_baseline_stats_split(self):
        trace = generate_trace(
            seed=2, params=TraceParams(duration_days=2, mean_concurrent_vms=40)
        )
        spec = ClusterSpec.of((baseline_gen3(), 6), (greensku_full(), 4))
        out = simulate(trace, spec, adoption=adopt_everything,
                       snapshot_hours=4.0)
        assert out.green_stats.samples > 0

    def test_densities_bounded(self):
        trace = generate_trace(
            seed=3, params=TraceParams(duration_days=2, mean_concurrent_vms=40)
        )
        out = simulate(trace, ClusterSpec.of((baseline_gen3(), 12)),
                       snapshot_hours=2.0)
        stats = out.baseline_stats
        assert 0 <= stats.mean_memory_density <= 1
        assert 0 <= stats.mean_touched_memory <= 1
