"""SoA placement engine: exact sums, rule parity, engine selection."""

import numpy as np
import pytest

from repro.allocation.cluster import (
    ClusterSpec,
    ENGINES,
    adopt_everything,
    adopt_nothing,
    outcome_digest,
    replay_on_engine,
    resolve_engine,
    simulate,
)
from repro.allocation.index import SCALE_SHIFT, scaled_int
from repro.allocation.scheduler import Server
from repro.allocation.soa import SoAPlacementEngine, scaled_sum
from repro.allocation.traces import TraceParams, generate_trace
from repro.allocation.vm import VmRequest
from repro.core.errors import ConfigError, SimulationError
from repro.hardware.sku import baseline_gen2, baseline_gen3, greensku_full

PARAMS = TraceParams(duration_days=2.0, mean_concurrent_vms=120)


def _cluster():
    return ClusterSpec.of(
        (baseline_gen3(), 10), (baseline_gen2(), 6), (greensku_full(), 6)
    )


def _vm(vm_id, cores=2, memory_gb=8.0, **kw):
    return VmRequest(
        vm_id=vm_id,
        arrival_hours=0.0,
        lifetime_hours=1.0,
        cores=cores,
        memory_gb=memory_gb,
        generation=3,
        app_name="Web",
        **kw,
    )


class TestScaledSum:
    def test_matches_scalar_oracle(self):
        """Vectorized conversion equals per-element scaled_int sums."""
        rng = np.random.default_rng(0)
        for _ in range(50):
            values = rng.uniform(0.0, 512.0, size=rng.integers(1, 40))
            # Sprinkle exact zeros and subnormal-scale float dust.
            values[rng.random(values.size) < 0.2] = 0.0
            values[0] *= 1e-300
            expected = sum(scaled_int(float(v)) for v in values)
            assert scaled_sum(values) == expected

    def test_empty_and_zero(self):
        assert scaled_sum(np.array([])) == 0
        assert scaled_sum(np.zeros(5)) == 0

    def test_integer_values_shift_exactly(self):
        assert scaled_sum(np.array([3.0])) == 3 << SCALE_SHIFT


class TestConstruction:
    def test_accepts_ascending_sparse_ids(self):
        # Non-dense but strictly increasing ids are valid (the carbon-
        # tiered backend feeds ascending subsets of a cluster's ids).
        servers = [Server(5, baseline_gen3()), Server(9, baseline_gen3())]
        engine = SoAPlacementEngine(servers)
        assert engine.server_ids == [5, 9]
        vm = _vm(1)
        chosen = engine.choose_baseline(vm, vm.cores, vm.memory_gb)
        assert chosen.server_id == 5

    def test_requires_strictly_increasing_ids(self):
        decreasing = [Server(1, baseline_gen3()), Server(0, baseline_gen3())]
        with pytest.raises(ConfigError, match="strictly increasing"):
            SoAPlacementEngine(decreasing)
        duplicated = [Server(2, baseline_gen3()), Server(2, baseline_gen3())]
        with pytest.raises(ConfigError, match="strictly increasing"):
            SoAPlacementEngine(duplicated)

    def test_requires_pristine_servers(self):
        server = Server(0, baseline_gen3())
        vm = _vm(1)
        server.place(vm, vm.cores, vm.memory_gb)
        with pytest.raises(ConfigError, match="pristine"):
            SoAPlacementEngine([server])

    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigError, match="unknown placement policy"):
            SoAPlacementEngine(_cluster().build_servers(), policy="random")

    def test_engine_registered(self):
        assert "soa" in ENGINES
        assert resolve_engine("soa") == "soa"


class TestPlacementRules:
    def test_duplicate_vm_rejected(self):
        engine = SoAPlacementEngine(_cluster().build_servers())
        vm = _vm(1)
        server = engine.choose_baseline(vm, vm.cores, vm.memory_gb)
        engine.place(server, vm, vm.cores, vm.memory_gb)
        with pytest.raises(SimulationError, match="already on server"):
            engine.place(server, vm, vm.cores, vm.memory_gb)

    def test_overfull_placement_rejected(self):
        engine = SoAPlacementEngine(_cluster().build_servers())
        vm = _vm(1, cores=10_000)
        with pytest.raises(SimulationError, match="does not fit"):
            engine.place(engine._view(0), vm, vm.cores, vm.memory_gb)

    def test_remove_unknown_vm_rejected(self):
        engine = SoAPlacementEngine(_cluster().build_servers())
        with pytest.raises(SimulationError, match="not on server"):
            engine.remove(engine._view(0), 42)

    def test_nonpositive_request_rejected(self):
        engine = SoAPlacementEngine(_cluster().build_servers())
        with pytest.raises(ConfigError, match="positive"):
            engine.choose_baseline(_vm(1), 0, 8.0)

    def test_full_node_never_green(self):
        engine = SoAPlacementEngine(_cluster().build_servers())
        vm = _vm(1, full_node=True)
        assert engine.choose_green(vm, vm.cores, vm.memory_gb) is None


class TestEquivalence:
    @pytest.mark.parametrize("policy", ["best-fit", "first-fit", "worst-fit"])
    @pytest.mark.parametrize(
        "adoption", [adopt_everything, adopt_nothing]
    )
    def test_bit_identical_to_reference(self, policy, adoption):
        from repro.allocation.scheduler import BestFitScheduler

        trace = generate_trace(3, PARAMS)
        kwargs = dict(
            adoption=adoption,
            snapshot_hours=5.0,
            scheduler=BestFitScheduler(policy),
        )
        digests = {
            engine: outcome_digest(
                simulate(trace, _cluster(), engine=engine, **kwargs)
            )
            for engine in ENGINES
        }
        assert len(set(digests.values())) == 1, digests

    def test_reset_reproduces_exactly(self):
        trace = generate_trace(4, PARAMS)
        engine = SoAPlacementEngine(_cluster().build_servers())
        first = replay_on_engine(
            trace, _cluster(), engine, adopt_everything, chunk_events=64
        )
        engine.reset()
        again = replay_on_engine(
            trace, _cluster(), engine, adopt_everything, chunk_events=64
        )
        assert outcome_digest(first) == outcome_digest(again)

    def test_empty_server_dust_excluded_from_snapshots(self):
        """Place/remove cycles must not leak float dust into snapshots.

        Repeated add/subtract of unlike floats leaves tiny nonzero
        residue on a now-empty server; the reference snapshot walk skips
        empty servers, so the SoA aggregate must mask them too.
        """
        engine = SoAPlacementEngine(_cluster().build_servers())
        vm_id = 0
        for round_ in range(8):
            placed = []
            for k in range(3):
                vm = _vm(vm_id, cores=1, memory_gb=0.1 + 0.7 * k + round_)
                server = engine.choose_baseline(vm, vm.cores, vm.memory_gb)
                engine.place(server, vm, vm.cores, vm.memory_gb)
                placed.append((server, vm.vm_id))
                vm_id += 1
            for server, placed_id in placed:
                engine.remove(server, placed_id)
        aggregate = engine._aggregate(green=False)
        assert aggregate.count == 0
        assert all(not bucket for bucket in aggregate.sums.values())

    def test_telemetry_counters(self):
        engine = SoAPlacementEngine(_cluster().build_servers())
        vm = _vm(1)
        server = engine.choose_baseline(vm, vm.cores, vm.memory_gb)
        engine.place(server, vm, vm.cores, vm.memory_gb)
        engine.remove(server, vm.vm_id)
        counters = engine.telemetry_counters()
        assert counters["engine.queries"] == 1
        assert counters["engine.places"] == 1
        assert counters["engine.removes"] == 1
