"""Vectorized trace pipeline: generator equivalence and columnar views.

The contract under test: the block-drawing ``vectorized`` backend emits
the bit-identical VM stream as the scalar ``reference`` loop, for every
seed and parameter variant, and the columnar/row representations of a
trace convert both ways without loss.
"""

import math
import pickle

import numpy as np
import pytest

from repro.allocation.columnar import ColumnarTrace
from repro.allocation.traces import (
    GENERATOR_ENV,
    TraceParams,
    VmTrace,
    _params_tables,
    generate_trace,
    resolve_generator,
)
from repro.allocation.vm import VmRequest
from repro.core.errors import ConfigError
from repro.gsf.sizing import _split_trace

SEEDS = (1, 3, 5, 7, 11)

PARAM_VARIANTS = (
    TraceParams(duration_days=2, mean_concurrent_vms=150),
    # Golden-digest scenario shape (bench_runtime.py pins digests on it).
    TraceParams(duration_days=3, mean_concurrent_vms=120),
    # Heavy full-node share exercises the override + lifetime branch.
    TraceParams(
        duration_days=2, mean_concurrent_vms=400, full_node_fraction=0.02
    ),
    # No diurnal swing + long-lived-heavy mix.
    TraceParams(
        duration_days=4,
        mean_concurrent_vms=100,
        diurnal_amplitude=0.0,
        long_lived_fraction=0.3,
    ),
)


class TestGeneratorEquivalence:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize(
        "params", PARAM_VARIANTS, ids=lambda p: f"d{p.duration_days:g}"
                                               f"v{p.mean_concurrent_vms}"
    )
    def test_bit_identical_vm_stream(self, seed, params):
        reference = generate_trace(seed, params, method="reference")
        vectorized = generate_trace(seed, params, method="vectorized")
        assert vectorized.digest() == reference.digest()
        assert vectorized.vms == reference.vms

    def test_full_node_vms_present_in_heavy_variant(self):
        """The equivalence must actually cover the full-node branch."""
        trace = generate_trace(3, PARAM_VARIANTS[2], method="vectorized")
        assert bool(trace.columns.full_node.any())

    def test_default_method_is_vectorized(self, monkeypatch):
        monkeypatch.delenv(GENERATOR_ENV, raising=False)
        assert resolve_generator() == "vectorized"
        assert resolve_generator("reference") == "reference"

    def test_env_var_selects_backend(self, monkeypatch):
        monkeypatch.setenv(GENERATOR_ENV, "reference")
        assert resolve_generator() == "reference"

    def test_unknown_method_rejected(self):
        with pytest.raises(ConfigError):
            generate_trace(1, TraceParams(duration_days=1), method="magic")


class TestGenerationMixTable:
    def test_identical_rng_draws(self):
        """The hoisted generation-mix table changes no RNG draw.

        Replays the pre-hoist per-VM pattern (``list(params.generation_mix)``
        rebuilt on every call) against the prebuilt array on identical
        generators: same values, same post-draw state.
        """
        params = TraceParams()
        tables = _params_tables(params)
        rng_new = np.random.default_rng(1234)
        rng_old = np.random.default_rng(1234)
        new = [
            int(1 + rng_new.choice(3, p=tables.gen_mix)) for _ in range(500)
        ]
        old = [
            int(1 + rng_old.choice(3, p=list(params.generation_mix)))
            for _ in range(500)
        ]
        assert new == old
        assert rng_new.integers(1 << 30) == rng_old.integers(1 << 30)


@pytest.fixture(scope="module")
def trace():
    return generate_trace(
        seed=11, params=TraceParams(duration_days=3, mean_concurrent_vms=150)
    )


def _scalar_peak(vms):
    """The pre-columnar event sweep (tuple sort + running sum)."""
    events = []
    for vm in vms:
        events.append((vm.arrival_hours, 1, vm.cores))
        departure = vm.departure_hours
        if math.isfinite(departure):
            events.append((departure, 0, vm.cores))
    events.sort()
    peak = live = 0
    for _time, is_arrival, cores in events:
        if is_arrival:
            live += cores
            if live > peak:
                peak = live
        else:
            live -= cores
    return peak


class TestColumnarViews:
    def test_row_column_round_trip(self, trace):
        rebuilt = ColumnarTrace.from_vms(
            trace.vms, base_app_names=trace.columns.app_names
        )
        assert rebuilt == trace.columns
        assert rebuilt.digest() == trace.digest()
        assert rebuilt.to_vms() == trace.vms

    def test_row_built_trace_matches_column_built(self, trace):
        by_rows = VmTrace(name=trace.name, params=trace.params, vms=trace.vms)
        assert by_rows == trace
        assert by_rows.digest() == trace.digest()

    def test_requires_exactly_one_representation(self, trace):
        with pytest.raises(ConfigError):
            VmTrace(name="x", params=trace.params)
        with pytest.raises(ConfigError):
            VmTrace(
                name="x",
                params=trace.params,
                vms=trace.vms,
                columns=trace.columns,
            )

    def test_vm_count_without_rows(self, trace):
        assert trace.vm_count == len(trace.vms) == trace.columns.n

    def test_last_arrival(self, trace):
        assert trace.last_arrival_hours == max(
            vm.arrival_hours for vm in trace.vms
        )

    def test_filter_matches_row_comprehension(self, trace):
        for gen in (1, 2, 3):
            sub = trace.filter(
                trace.columns.generation == gen, name=f"g{gen}"
            )
            assert sub.vms == tuple(
                vm for vm in trace.vms if vm.generation == gen
            )
            assert sub.params == trace.params

    def test_peak_cores_matches_scalar_sweep(self, trace):
        assert trace.peak_concurrent_cores() == _scalar_peak(trace.vms)

    def test_peak_cores_infinite_lifetimes(self):
        vms = (
            VmRequest(
                vm_id=0, arrival_hours=0.0, lifetime_hours=math.inf,
                cores=4, memory_gb=16.0, generation=3, app_name="Redis",
            ),
            VmRequest(
                vm_id=1, arrival_hours=1.0, lifetime_hours=2.0,
                cores=8, memory_gb=32.0, generation=3, app_name="Redis",
            ),
        )
        t = VmTrace(name="inf", params=TraceParams(duration_days=1), vms=vms)
        assert t.peak_concurrent_cores() == _scalar_peak(vms) == 12

    def test_pickle_round_trip(self, trace):
        clone = pickle.loads(pickle.dumps(trace))
        assert clone == trace
        assert clone.digest() == trace.digest()
        assert clone.vms == trace.vms

    def test_columns_immutable(self, trace):
        with pytest.raises((ValueError, AttributeError)):
            trace.columns.cores[0] = 99
        with pytest.raises(AttributeError):
            trace.columns.n = 0

    def test_unknown_app_names_intern_deterministically(self):
        vms = tuple(
            VmRequest(
                vm_id=i, arrival_hours=float(i), lifetime_hours=1.0,
                cores=1, memory_gb=4.0, generation=3,
                app_name=f"custom-{i % 2}",
            )
            for i in range(4)
        )
        columns = ColumnarTrace.from_vms(vms)
        assert columns.app_names == ("custom-0", "custom-1")
        assert columns.to_vms() == vms


class TestSplitTrace:
    def test_matches_scalar_partition(self, trace):
        def adoption(app_name, generation):
            # Adopt an arbitrary but deterministic subset of pairs.
            return 1.1 if (len(app_name) + generation) % 3 == 0 else None

        green, base = _split_trace(trace, adoption)
        want_green = tuple(
            vm for vm in trace.vms
            if not vm.full_node
            and adoption(vm.app_name, vm.generation) is not None
        )
        want_base = tuple(
            vm for vm in trace.vms if vm not in set(want_green)
        )
        assert green.vms == want_green
        assert base.vms == want_base
        assert green.name.endswith("-adopters")
        assert base.name.endswith("-rest")

    def test_full_node_vms_never_adopt(self):
        params = TraceParams(
            duration_days=2, mean_concurrent_vms=400, full_node_fraction=0.02
        )
        trace = generate_trace(seed=3, params=params)
        assert bool(trace.columns.full_node.any())
        green, base = _split_trace(trace, lambda app, gen: 1.0)
        assert not any(vm.full_node for vm in green.vms)
        assert sum(vm.full_node for vm in base.vms) == int(
            trace.columns.full_node.sum()
        )

    def test_empty_trace(self):
        empty = VmTrace(
            name="empty", params=TraceParams(duration_days=1), vms=()
        )
        green, base = _split_trace(empty, lambda app, gen: 1.0)
        assert green.vm_count == 0 and base.vm_count == 0
