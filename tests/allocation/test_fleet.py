"""Sharded fleet driver: exact merges, resilience, journal invariance."""

import pytest

from repro.allocation.cluster import (
    ClusterSpec,
    adopt_everything,
    outcome_digest,
    simulate,
)
from repro.allocation.fleet import (
    ClusterTask,
    FleetOutcome,
    FleetSpec,
    simulate_fleet,
)
from repro.allocation.traces import TraceParams, generate_trace
from repro.core import telemetry
from repro.core.errors import ConfigError, SimulationError
from repro.core.faults import FaultPlan
from repro.core.resilience import (
    CheckpointJournal,
    ResiliencePolicy,
    RetryPolicy,
    activated,
)
from repro.hardware.sku import baseline_gen3, greensku_full

PARAMS = TraceParams(duration_days=1.5, mean_concurrent_vms=80)

CLUSTERS = 6


def _fast_retry(max_retries=2):
    return RetryPolicy(
        max_retries=max_retries, backoff_base_s=0.0, sleep=lambda _s: None
    )


def _spec(clusters=CLUSTERS):
    tasks = []
    for i in range(clusters):
        cluster = ClusterSpec.of(
            (baseline_gen3(), 6 + i % 3), (greensku_full(), 4)
        )
        tasks.append(
            ClusterTask(
                name=f"cluster-{i:03d}",
                seed=500 + i,
                params=PARAMS,
                cluster=cluster,
            )
        )
    return FleetSpec.of(*tasks)


class TestFleetSpec:
    def test_requires_clusters(self):
        with pytest.raises(ConfigError, match="at least one cluster"):
            FleetSpec.of()

    def test_requires_unique_names(self):
        task = _spec(1).clusters[0]
        with pytest.raises(ConfigError, match="unique"):
            FleetSpec.of(task, task)

    def test_requires_named_tasks(self):
        task = _spec(1).clusters[0]
        with pytest.raises(ConfigError, match="non-empty name"):
            ClusterTask(
                name="", seed=task.seed, params=task.params,
                cluster=task.cluster,
            )

    def test_totals(self):
        spec = _spec(3)
        assert spec.total_clusters == 3
        assert spec.total_servers == sum(
            t.cluster.total_servers for t in spec.clusters
        )


class TestFleetAggregation:
    def test_matches_per_cluster_simulate(self):
        """Fleet aggregates == exact sums of standalone cluster runs."""
        spec = _spec()
        fleet = simulate_fleet(spec, adopt_everything, snapshot_hours=4.0)
        singles = [
            simulate(
                generate_trace(t.seed, t.params, name=t.name),
                t.cluster,
                adopt_everything,
                snapshot_hours=4.0,
            )
            for t in spec.clusters
        ]
        assert fleet.completed_clusters == CLUSTERS
        assert fleet.placed_vms == sum(s.placed_vms for s in singles)
        assert fleet.rejected_vms == sum(
            len(s.rejected_vms) for s in singles
        )
        assert fleet.green_placements == sum(
            s.green_placements for s in singles
        )
        assert [outcome_digest(o) for o in fleet.outcomes] == [
            outcome_digest(s) for s in singles
        ]

    def test_serial_equals_parallel(self):
        spec = _spec()
        serial = simulate_fleet(
            spec, adopt_everything, snapshot_hours=4.0, jobs=1
        )
        parallel = simulate_fleet(
            spec, adopt_everything, snapshot_hours=4.0, jobs=2
        )
        assert serial.digest() == parallel.digest()
        assert (
            serial.baseline_stats.canonical()
            == parallel.baseline_stats.canonical()
        )
        assert (
            serial.green_stats.canonical()
            == parallel.green_stats.canonical()
        )

    def test_engine_invariant_digest(self):
        spec = _spec(3)
        digests = {
            engine: simulate_fleet(
                spec, adopt_everything, snapshot_hours=4.0, engine=engine
            ).digest()
            for engine in ("reference", "indexed", "soa")
        }
        assert len(set(digests.values())) == 1, digests

    def test_reconcile_detects_tampering(self):
        fleet = simulate_fleet(_spec(2), adopt_everything)
        fleet.placed_vms += 1
        with pytest.raises(SimulationError, match="placed_vms diverged"):
            fleet.reconcile()

    def test_telemetry_counters(self):
        spec = _spec(2)
        with telemetry.capture() as tel:
            fleet = simulate_fleet(spec, adopt_everything)
        assert tel.counters["fleet.clusters"] == 2
        assert tel.counters["fleet.placed_vms"] == fleet.placed_vms
        assert "fleet.simulate" in tel.timers


class TestFleetResilience:
    def test_flaky_kills_retry_to_clean_digest(self, tmp_path):
        """First-attempt kills on some shards recover to the clean run."""
        spec = _spec()
        clean = simulate_fleet(spec, adopt_everything)
        policy = ResiliencePolicy(
            journal=CheckpointJournal(tmp_path / "journal"),
            retry=_fast_retry(max_retries=2),
            faults=FaultPlan(kill_indices=(1, 4), kill_attempts=1),
            on_failure="record",
        )
        with telemetry.capture() as tel:
            with activated(policy):
                flaky = simulate_fleet(spec, adopt_everything)
        assert tel.counters["resilience.retries"] >= 2
        assert not flaky.failures
        assert flaky.digest() == clean.digest()

    def test_doomed_shards_degrade_then_resume_bit_identical(self, tmp_path):
        """Mid-fleet kills leave holes; a journal resume restores them."""
        spec = _spec()
        clean = simulate_fleet(spec, adopt_everything)
        journal = CheckpointJournal(tmp_path / "journal")
        doomed = (2, 5)
        doomed_policy = ResiliencePolicy(
            journal=journal,
            retry=_fast_retry(max_retries=2),
            faults=FaultPlan(kill_indices=doomed, kill_attempts=3),
            on_failure="record",
        )
        with telemetry.capture() as tel:
            with activated(doomed_policy):
                degraded = simulate_fleet(spec, adopt_everything)
        assert tel.counters["resilience.failures"] == len(doomed)
        assert tel.counters["fleet.failed_clusters"] == len(doomed)
        assert len(degraded.failures) == len(doomed)
        assert degraded.completed_clusters == CLUSTERS - len(doomed)
        assert not degraded.feasible
        assert [
            i for i, o in enumerate(degraded.outcomes) if o is None
        ] == list(doomed)
        # The degraded aggregates still reconcile over the survivors.
        degraded.reconcile()
        assert degraded.digest() != clean.digest()

        # Resume with faults cleared: only the holes recompute.
        with telemetry.capture() as tel:
            with activated(ResiliencePolicy(journal=journal)):
                resumed = simulate_fleet(spec, adopt_everything)
        counters = tel.counters
        assert counters["resilience.resumed"] == CLUSTERS - len(doomed)
        assert counters["resilience.checkpointed"] == len(doomed)
        assert resumed.digest() == clean.digest()
        assert (
            resumed.baseline_stats.canonical()
            == clean.baseline_stats.canonical()
        )

    def test_journal_survives_engine_switch(self, tmp_path):
        """Engine is excluded from the key: a soa journal resumes under
        the reference backend without recomputing a single shard."""
        spec = _spec(3)
        journal = CheckpointJournal(tmp_path / "journal")
        with activated(ResiliencePolicy(journal=journal)):
            first = simulate_fleet(spec, adopt_everything, engine="soa")
        with telemetry.capture() as tel:
            with activated(ResiliencePolicy(journal=journal)):
                second = simulate_fleet(
                    spec, adopt_everything, engine="reference"
                )
        assert tel.counters["resilience.resumed"] == 3
        assert "resilience.checkpointed" not in tel.counters
        assert second.digest() == first.digest()


class TestFleetOutcomeDigest:
    def test_failed_shards_change_digest(self):
        fleet = simulate_fleet(_spec(2), adopt_everything)
        whole = fleet.digest()
        fleet.outcomes[1] = None
        assert fleet.digest() != whole
        assert fleet.cluster_digests()[1][1] is None
