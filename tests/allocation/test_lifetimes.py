"""Lifetime-aware placement tests."""

import pytest

from repro.allocation.lifetimes import (
    DEFAULT_LONG_LIVED_THRESHOLD_HOURS,
    LifetimePredictor,
    segregation_study,
    stranded_capacity_fraction,
)
from repro.allocation.traces import TraceParams, VmTrace, generate_trace
from repro.allocation.vm import VmRequest
from repro.core.errors import ConfigError


def make_vm(vm_id, lifetime, cores=8, arrival=0.0):
    return VmRequest(
        vm_id=vm_id,
        arrival_hours=arrival,
        lifetime_hours=lifetime,
        cores=cores,
        memory_gb=cores * 4.0,
        generation=3,
        app_name="Redis",
    )


class TestPredictor:
    def test_perfect_oracle(self):
        predictor = LifetimePredictor(accuracy=1.0)
        long_vm = make_vm(1, lifetime=1000.0)
        short_vm = make_vm(2, lifetime=2.0)
        assert predictor.predict_long_lived(long_vm)
        assert not predictor.predict_long_lived(short_vm)

    def test_deterministic_per_vm(self):
        predictor = LifetimePredictor(accuracy=0.7)
        vm = make_vm(5, lifetime=1000.0)
        assert predictor.predict_long_lived(vm) == predictor.predict_long_lived(vm)

    def test_noisy_oracle_errs_sometimes(self):
        predictor = LifetimePredictor(accuracy=0.6, seed=3)
        long_vms = [make_vm(i, lifetime=1000.0) for i in range(200)]
        predictions = [predictor.predict_long_lived(vm) for vm in long_vms]
        accuracy = sum(predictions) / len(predictions)
        assert 0.45 <= accuracy <= 0.75

    def test_invalid_accuracy(self):
        with pytest.raises(ConfigError):
            LifetimePredictor(accuracy=0.3)

    def test_invalid_threshold(self):
        with pytest.raises(ConfigError):
            LifetimePredictor(threshold_hours=0)


class TestSegregation:
    @pytest.fixture(scope="class")
    def trace(self):
        return generate_trace(
            seed=31,
            params=TraceParams(duration_days=5, mean_concurrent_vms=100),
        )

    def test_outcome_consistency(self, trace):
        outcome = segregation_study(trace)
        assert (
            outcome.segregated_servers
            == outcome.anchor_servers + outcome.churn_servers
        )
        assert outcome.interleaved_servers > 0

    def test_segregation_within_one_pool_peak(self, trace):
        # Splitting pays at most each pool's own peak; it never needs
        # more than double the interleaved size in practice.
        outcome = segregation_study(trace)
        assert (
            outcome.segregated_servers
            <= 2 * outcome.interleaved_servers
        )


class TestStrandedCapacity:
    def test_fraction_bounded(self):
        trace = generate_trace(
            seed=33,
            params=TraceParams(duration_days=4, mean_concurrent_vms=80),
        )
        fraction = stranded_capacity_fraction(trace)
        assert 0.0 <= fraction <= 1.0

    def test_pure_short_lived_strands_nothing(self):
        vms = tuple(
            make_vm(i, lifetime=1.0, arrival=float(i) * 0.1)
            for i in range(30)
        )
        trace = VmTrace(
            name="short", params=TraceParams(duration_days=2), vms=vms
        )
        assert stranded_capacity_fraction(trace, min_servers=2) == 0.0

    def test_long_lived_sliver_strands_capacity(self):
        # One small VM that never leaves pins a near-empty server.
        vms = (make_vm(1, lifetime=10_000.0, cores=2),)
        trace = VmTrace(
            name="pin",
            params=TraceParams(duration_days=30),
            vms=vms,
        )
        fraction = stranded_capacity_fraction(trace, min_servers=1)
        assert fraction > 0.5
