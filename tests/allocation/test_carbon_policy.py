"""Carbon-aware placement: policy resolution, tiering, engine equivalence."""

import pytest

from repro.allocation.cluster import (
    CARBON_PLACEMENT_POLICIES,
    ClusterSpec,
    ENGINES,
    PlacementPolicy,
    adopt_everything,
    outcome_digest,
    replay_columnar,
    resolve_placement,
    simulate,
)
from repro.allocation.traces import TraceParams, generate_trace
from repro.carbon.grid import CarbonAccountant, carbon_aware_policy, diurnal_signal
from repro.core.errors import ConfigError
from repro.hardware.sku import baseline_gen2, baseline_gen3, greensku_full

PARAMS = TraceParams(duration_days=2.0, mean_concurrent_vms=150)


def _divergent_cluster():
    """Two baseline generations + green: blind and aware disagree here."""
    return ClusterSpec.of(
        (baseline_gen2(), 10), (baseline_gen3(), 10), (greensku_full(), 6)
    )


def _homogeneous_cluster():
    """One baseline generation: every server shares one carbon tier."""
    return ClusterSpec.of((baseline_gen3(), 16), (greensku_full(), 6))


def _run(cluster, engine, placement=None, accountant=None, chunk=None):
    trace = generate_trace(7, PARAMS)
    if chunk is None:
        return simulate(
            trace, cluster, adoption=adopt_everything, engine=engine,
            placement=placement, accountant=accountant,
        )
    return replay_columnar(
        trace, cluster, adopt_everything, engine=engine,
        chunk_events=chunk, placement=placement, accountant=accountant,
    )


class TestResolution:
    def test_blind_resolves_to_none(self):
        assert resolve_placement(None) is None
        assert resolve_placement("blind") is None
        assert resolve_placement(PlacementPolicy(name="blind")) is None

    def test_carbon_aware_needs_a_built_policy(self):
        with pytest.raises(ConfigError, match="named by string alone"):
            resolve_placement("carbon_aware")

    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigError, match="unknown placement policy"):
            resolve_placement("greedy")

    def test_policy_validation(self):
        assert set(CARBON_PLACEMENT_POLICIES) == {"blind", "carbon_aware"}
        with pytest.raises(ConfigError, match="carbon_key"):
            PlacementPolicy(name="carbon_aware")
        with pytest.raises(ConfigError, match="unknown placement policy"):
            PlacementPolicy(name="random")

    def test_built_policy_passes_through(self):
        policy = carbon_aware_policy(diurnal_signal())
        assert resolve_placement(policy) is policy


class TestEquivalence:
    def test_carbon_aware_identical_across_engines_and_chunkings(self):
        policy = carbon_aware_policy(diurnal_signal())
        digests = set()
        for engine in ENGINES:
            for chunk in (None, 64, 4096):
                outcome = _run(
                    _divergent_cluster(), engine,
                    placement=carbon_aware_policy(diurnal_signal()),
                    chunk=chunk,
                )
                digests.add(outcome_digest(outcome))
        assert len(digests) == 1, digests
        assert policy.name == "carbon_aware"

    def test_aware_diverges_from_blind_on_two_generations(self):
        blind = _run(_divergent_cluster(), "reference")
        aware = _run(
            _divergent_cluster(), "reference",
            placement=carbon_aware_policy(diurnal_signal()),
        )
        assert outcome_digest(blind) != outcome_digest(aware)

    def test_homogeneous_tiers_reduce_to_blind(self):
        # One baseline generation -> a single carbon tier per pool, so
        # the tiered backend must reproduce blind placement exactly.
        blind = _run(_homogeneous_cluster(), "reference")
        aware = _run(
            _homogeneous_cluster(), "reference",
            placement=carbon_aware_policy(diurnal_signal()),
        )
        assert outcome_digest(blind) == outcome_digest(aware)

    def test_accountant_never_changes_the_outcome(self):
        bare = _run(_divergent_cluster(), "indexed")
        accounted = _run(
            _divergent_cluster(), "indexed",
            accountant=CarbonAccountant(diurnal_signal()),
        )
        assert outcome_digest(bare) == outcome_digest(accounted)


class TestAccounting:
    def test_operational_kg_engine_invariant(self):
        kgs = set()
        for engine in ENGINES:
            for chunk in (None, 64):
                outcome = _run(
                    _divergent_cluster(), engine,
                    placement=carbon_aware_policy(diurnal_signal()),
                    accountant=CarbonAccountant(diurnal_signal()),
                    chunk=chunk,
                )
                kgs.add(outcome.operational.total_kg)
        assert len(kgs) == 1, kgs

    def test_aware_saves_operational_carbon_here(self):
        results = {}
        for label, placement in (
            ("blind", None),
            ("aware", carbon_aware_policy(diurnal_signal())),
        ):
            outcome = _run(
                _divergent_cluster(), "soa",
                placement=placement,
                accountant=CarbonAccountant(diurnal_signal()),
            )
            results[label] = outcome.operational
        # Same VMs either way: identical core-hours, different kg.
        assert results["aware"].total_core_hours == pytest.approx(
            results["blind"].total_core_hours
        )
        assert results["aware"].total_kg < results["blind"].total_kg

    def test_outcome_without_accountant_has_no_report(self):
        outcome = _run(_divergent_cluster(), "reference")
        assert outcome.operational is None
