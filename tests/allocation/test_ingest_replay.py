"""Cross-engine replay of the bundled ingested trace.

The acceptance bar of the ingestion tentpole: the real-trace sample must
replay **bit-identically** across every placement engine, every chunking
regime, and both store load paths — and both the trace digest and the
replay outcome digest are pinned as goldens (mirrored in
``benchmarks/golden_ingest_digests.json``, which CI enforces).
"""

import json
from pathlib import Path

import pytest

from repro.allocation.cluster import (
    ClusterSpec,
    ENGINES,
    adopt_everything,
    adopt_nothing,
    outcome_digest,
    replay_columnar,
    simulate,
)
from repro.allocation.ingest import bundled_sample_path, ingest_azure_vm_trace
from repro.allocation.store import TraceStore
from repro.hardware.sku import baseline_gen2, baseline_gen3, greensku_full

#: Content digest of the ingested bundled sample (regenerate with
#: ``python tests/data/azure/make_sample.py`` + ``repro trace ingest
#: --digest``; update benchmarks/golden_ingest_digests.json in lockstep).
GOLDEN_TRACE_DIGEST = (
    "7d66f1bacfa845b0ccd7efbce8f2ed282e7d9bb97b541a3d38f2bdf05c785763"
)

#: Outcome digest of the reference replay below.
GOLDEN_OUTCOME_DIGEST = (
    "ce00b36d9c3439620ce3f38afafbf7d4d28fd727b7ad6f6882efba4786029d7c"
)

CHUNKS = (1, 64, 10**9)


def _cluster():
    return ClusterSpec.of(
        (baseline_gen3(), 10), (baseline_gen2(), 6), (greensku_full(), 6)
    )


@pytest.fixture(scope="module")
def sample_trace():
    trace, _report = ingest_azure_vm_trace(
        bundled_sample_path(), name="azure-sample"
    )
    return trace


class TestGoldenDigests:
    def test_trace_digest_pinned(self, sample_trace):
        assert sample_trace.digest() == GOLDEN_TRACE_DIGEST

    def test_outcome_digest_pinned(self, sample_trace):
        outcome = simulate(
            sample_trace,
            _cluster(),
            adopt_everything,
            snapshot_hours=6.0,
            engine="reference",
        )
        assert not outcome.rejected_vms
        assert outcome_digest(outcome) == GOLDEN_OUTCOME_DIGEST

    def test_goldens_file_in_sync(self, sample_trace):
        """The bench/CI goldens file pins the same values as this test."""
        path = (
            Path(__file__).resolve().parents[2]
            / "benchmarks"
            / "golden_ingest_digests.json"
        )
        golden = json.loads(path.read_text())["azure-sample"]
        assert golden["trace_digest"] == GOLDEN_TRACE_DIGEST
        assert golden["outcome_digest"] == GOLDEN_OUTCOME_DIGEST


class TestCrossEngineReplay:
    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("chunk", CHUNKS)
    def test_engines_and_chunks_bit_identical(
        self, sample_trace, engine, chunk
    ):
        outcome = replay_columnar(
            sample_trace,
            _cluster(),
            adopt_everything,
            snapshot_hours=6.0,
            engine=engine,
            chunk_events=chunk,
        )
        assert outcome_digest(outcome) == GOLDEN_OUTCOME_DIGEST

    def test_rejections_identical_across_engines(self, sample_trace):
        tiny = ClusterSpec.of((baseline_gen3(), 3), (greensku_full(), 1))
        golden = simulate(
            sample_trace, tiny, adopt_nothing, snapshot_hours=6.0,
            engine="reference",
        )
        assert golden.rejected_vms, "tiny cluster must reject VMs"
        for engine in ENGINES:
            for chunk in CHUNKS:
                outcome = replay_columnar(
                    sample_trace, tiny, adopt_nothing, snapshot_hours=6.0,
                    engine=engine, chunk_events=chunk,
                )
                assert outcome_digest(outcome) == outcome_digest(golden), (
                    engine, chunk,
                )


class TestStorePathsReplayIdentically:
    def test_eager_vs_mmap_outcomes(self, sample_trace, tmp_path):
        store = TraceStore(tmp_path / "store")
        path = bundled_sample_path()
        ingest_azure_vm_trace(path, store=store)  # populate
        eager, _ = ingest_azure_vm_trace(path, store=store)
        mapped, _ = ingest_azure_vm_trace(path, store=store, mmap=True)
        digests = set()
        for trace in (sample_trace, eager, mapped):
            outcome = replay_columnar(
                trace, _cluster(), adopt_everything, snapshot_hours=6.0
            )
            digests.add(outcome_digest(outcome))
        assert digests == {GOLDEN_OUTCOME_DIGEST}
