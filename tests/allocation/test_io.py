"""Trace serialization tests."""

import math

import pytest

from repro.allocation.io import (
    load_trace,
    save_trace,
    trace_from_csv,
    trace_to_csv,
)
from repro.allocation.traces import TraceParams, generate_trace
from repro.core.errors import ConfigError


@pytest.fixture(scope="module")
def trace():
    return generate_trace(
        seed=13, params=TraceParams(duration_days=3, mean_concurrent_vms=50)
    )


class TestRoundTrip:
    def test_vm_count_preserved(self, trace):
        loaded = trace_from_csv(trace_to_csv(trace))
        assert len(loaded.vms) == len(trace.vms)

    def test_fields_preserved(self, trace):
        loaded = trace_from_csv(trace_to_csv(trace))
        for a, b in zip(trace.vms, loaded.vms):
            assert a.vm_id == b.vm_id
            assert a.cores == b.cores
            assert a.generation == b.generation
            assert a.app_name == b.app_name
            assert a.full_node == b.full_node
            assert a.arrival_hours == pytest.approx(
                b.arrival_hours, rel=1e-5
            )
            assert a.memory_gb == pytest.approx(b.memory_gb, rel=1e-5)

    def test_infinite_lifetime_roundtrip(self, trace):
        csv_text = (
            "vm_id,arrival_hours,lifetime_hours,cores,memory_gb,"
            "generation,app_name,max_memory_fraction,full_node\n"
            "1,0,inf,80,768,3,Redis,0.5,1\n"
        )
        loaded = trace_from_csv(csv_text)
        assert math.isinf(loaded.vms[0].lifetime_hours)

    def test_file_roundtrip(self, trace, tmp_path):
        path = tmp_path / "trace.csv"
        save_trace(trace, path)
        loaded = load_trace(path)
        assert loaded.name == "trace"
        assert len(loaded.vms) == len(trace.vms)


class TestValidation:
    def test_missing_columns_rejected(self):
        with pytest.raises(ConfigError):
            trace_from_csv("vm_id,cores\n1,4\n")

    def test_bad_value_reports_line(self):
        csv_text = (
            "vm_id,arrival_hours,lifetime_hours,cores,memory_gb,"
            "generation,app_name,max_memory_fraction,full_node\n"
            "1,0,5,not-a-number,16,3,Redis,0.5,0\n"
        )
        with pytest.raises(ConfigError, match="line 2"):
            trace_from_csv(csv_text)

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(ConfigError):
            load_trace(tmp_path / "nope.csv")

    def test_arrivals_sorted_after_load(self):
        csv_text = (
            "vm_id,arrival_hours,lifetime_hours,cores,memory_gb,"
            "generation,app_name,max_memory_fraction,full_node\n"
            "1,10,5,4,16,3,Redis,0.5,0\n"
            "2,3,5,4,16,3,Redis,0.5,0\n"
        )
        loaded = trace_from_csv(csv_text)
        assert [vm.vm_id for vm in loaded.vms] == [2, 1]

    def test_duration_inferred(self):
        # The inferred window covers the arrival *span* (anchored at the
        # first arrival), not the distance from the epoch: a lone VM at
        # hour 30 gets a one-day window [30, 54], not [0, 48].
        csv_text = (
            "vm_id,arrival_hours,lifetime_hours,cores,memory_gb,"
            "generation,app_name,max_memory_fraction,full_node\n"
            "1,30,5,4,16,3,Redis,0.5,0\n"
        )
        loaded = trace_from_csv(csv_text)
        assert loaded.params.duration_days == 1.0
        assert loaded.start_hours == 30.0
        assert loaded.end_hours == 54.0

    def test_duration_inferred_from_span(self):
        csv_text = (
            "vm_id,arrival_hours,lifetime_hours,cores,memory_gb,"
            "generation,app_name,max_memory_fraction,full_node\n"
            "1,100,5,4,16,3,Redis,0.5,0\n"
            "2,130,5,4,16,3,Redis,0.5,0\n"
        )
        loaded = trace_from_csv(csv_text)
        assert loaded.params.duration_days == 2.0
        assert loaded.start_hours == 100.0
