"""VM request tests."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.allocation.vm import VmRequest
from repro.core.errors import ConfigError


def make_vm(**overrides):
    base = dict(
        vm_id=1,
        arrival_hours=0.0,
        lifetime_hours=10.0,
        cores=4,
        memory_gb=16.0,
        generation=3,
        app_name="Redis",
    )
    base.update(overrides)
    return VmRequest(**base)


class TestValidation:
    def test_zero_cores_rejected(self):
        with pytest.raises(ConfigError):
            make_vm(cores=0)

    def test_zero_memory_rejected(self):
        with pytest.raises(ConfigError):
            make_vm(memory_gb=0)

    def test_bad_generation_rejected(self):
        with pytest.raises(ConfigError):
            make_vm(generation=0)

    def test_negative_arrival_rejected(self):
        with pytest.raises(ConfigError):
            make_vm(arrival_hours=-1)

    def test_memory_fraction_bounds(self):
        with pytest.raises(ConfigError):
            make_vm(max_memory_fraction=1.5)


class TestDeparture:
    def test_departure_time(self):
        vm = make_vm(arrival_hours=5.0, lifetime_hours=10.0)
        assert vm.departure_hours == 15.0

    def test_infinite_lifetime(self):
        vm = make_vm(lifetime_hours=math.inf)
        assert math.isinf(vm.departure_hours)


class TestScaling:
    def test_factor_one_is_identity(self):
        vm = make_vm()
        assert vm.scaled(1.0) is vm

    def test_factor_125(self):
        # The paper scales cores AND memory by the factor; cores round up.
        vm = make_vm(cores=8, memory_gb=32.0)
        scaled = vm.scaled(1.25)
        assert scaled.cores == 10
        assert scaled.memory_gb == pytest.approx(40.0)

    def test_cores_round_up(self):
        vm = make_vm(cores=2)
        assert vm.scaled(1.25).cores == 3  # ceil(2.5)

    def test_factor_below_one_rejected(self):
        with pytest.raises(ConfigError):
            make_vm().scaled(0.8)

    def test_infinite_factor_rejected(self):
        with pytest.raises(ConfigError):
            make_vm().scaled(math.inf)

    @given(st.floats(min_value=1.0, max_value=3.0))
    def test_scaled_never_shrinks(self, factor):
        vm = make_vm(cores=8, memory_gb=32.0)
        scaled = vm.scaled(factor)
        assert scaled.cores >= vm.cores
        assert scaled.memory_gb >= vm.memory_gb

    def test_scaling_preserves_identity_fields(self):
        vm = make_vm()
        scaled = vm.scaled(1.5)
        assert scaled.vm_id == vm.vm_id
        assert scaled.app_name == vm.app_name
        assert scaled.arrival_hours == vm.arrival_hours
