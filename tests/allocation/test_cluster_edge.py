"""Edge-case tests for the cluster simulator."""

import math

import pytest

from repro.allocation.cluster import (
    ClusterSpec,
    adopt_everything,
    adopt_nothing,
    simulate,
)
from repro.allocation.traces import TraceParams, VmTrace
from repro.allocation.vm import VmRequest
from repro.hardware.sku import baseline_gen3, greensku_cxl


def make_vm(vm_id, app="Redis", **kw):
    base = dict(
        vm_id=vm_id,
        arrival_hours=0.0,
        lifetime_hours=5.0,
        cores=8,
        memory_gb=32.0,
        generation=3,
        app_name=app,
    )
    base.update(kw)
    return VmRequest(**base)


def trace_of(vms, days=1.0):
    return VmTrace(
        name="edge", params=TraceParams(duration_days=days), vms=tuple(vms)
    )


class TestEmptyAndTiny:
    def test_empty_trace_feasible(self):
        out = simulate(trace_of([]), ClusterSpec.of((baseline_gen3(), 1)))
        assert out.feasible
        assert out.placed_vms == 0

    def test_single_vm(self):
        out = simulate(
            trace_of([make_vm(1)]), ClusterSpec.of((baseline_gen3(), 1))
        )
        assert out.placed_vms == 1

    def test_vm_larger_than_any_server_rejected(self):
        vm = make_vm(1, cores=81, memory_gb=32.0)
        out = simulate(trace_of([vm]), ClusterSpec.of((baseline_gen3(), 3)))
        assert out.rejected_vms == [1]

    def test_memory_larger_than_any_server_rejected(self):
        vm = make_vm(1, cores=4, memory_gb=10_000.0)
        out = simulate(trace_of([vm]), ClusterSpec.of((baseline_gen3(), 3)))
        assert out.rejected_vms == [1]


class TestUnknownApps:
    def test_unknown_app_still_places(self):
        """Trace apps outside the profiled 20 (e.g. real traces) place
        fine; they just get no Pond tiering plan."""
        vm = make_vm(1, app="some-internal-service")
        spec = ClusterSpec.of((greensku_cxl(), 1))
        out = simulate(trace_of([vm]), spec, adoption=adopt_everything)
        assert out.feasible
        assert out.green_placements == 1


class TestBoundaryTimes:
    def test_vm_departing_exactly_at_next_arrival(self):
        vms = [
            make_vm(1, cores=80, memory_gb=768.0, lifetime_hours=2.0),
            make_vm(
                2,
                cores=80,
                memory_gb=768.0,
                arrival_hours=2.0,
                lifetime_hours=2.0,
            ),
        ]
        out = simulate(trace_of(vms), ClusterSpec.of((baseline_gen3(), 1)))
        assert out.feasible

    def test_infinite_lifetime_vm_never_releases(self):
        vms = [
            make_vm(1, cores=80, memory_gb=768.0, lifetime_hours=math.inf),
            make_vm(
                2,
                cores=80,
                memory_gb=768.0,
                arrival_hours=5.0,
            ),
        ]
        out = simulate(trace_of(vms), ClusterSpec.of((baseline_gen3(), 1)))
        assert out.rejected_vms == [2]

    def test_zero_capacity_green_pool(self):
        """A cluster spec may carry a zero-count SKU entry."""
        spec = ClusterSpec.of((baseline_gen3(), 1), (greensku_cxl(), 0))
        out = simulate(
            trace_of([make_vm(1)]), spec, adoption=adopt_everything
        )
        assert out.feasible
        assert out.green_placements == 0
        assert out.fallback_placements == 1


class TestAdoptionPolicyContracts:
    def test_policy_exceptions_propagate(self):
        def broken(app, gen):
            raise RuntimeError("boom")

        with pytest.raises(RuntimeError):
            simulate(
                trace_of([make_vm(1)]),
                ClusterSpec.of(
                    (baseline_gen3(), 1), (greensku_cxl(), 1)
                ),
                adoption=broken,
            )

    def test_full_node_bypasses_policy(self):
        calls = []

        def recording(app, gen):
            calls.append(app)
            return 1.0

        vm = make_vm(
            1, cores=80, memory_gb=768.0, full_node=True,
            lifetime_hours=10.0,
        )
        simulate(
            trace_of([vm]),
            ClusterSpec.of((baseline_gen3(), 1)),
            adoption=recording,
        )
        assert calls == []  # full-node VMs never consult adoption
