"""Best-fit scheduler and server state tests."""

import pytest

from repro.allocation.scheduler import BestFitScheduler, Server
from repro.allocation.vm import VmRequest
from repro.core.errors import SimulationError
from repro.hardware.sku import baseline_gen3, greensku_full


def make_vm(vm_id=1, cores=4, memory_gb=16.0, full_node=False, **kw):
    base = dict(
        vm_id=vm_id,
        arrival_hours=0.0,
        lifetime_hours=10.0,
        cores=cores,
        memory_gb=memory_gb,
        generation=3,
        app_name="Redis",
    )
    base.update(kw)
    if full_node:
        base.update(cores=80, memory_gb=768.0, full_node=True)
    return VmRequest(**base)


class TestServerState:
    def test_initial_capacity(self):
        server = Server(0, baseline_gen3())
        assert server.free_cores == 80
        assert server.free_memory_gb == pytest.approx(768.0)
        assert server.is_empty

    def test_greensku_flag(self):
        assert Server(0, greensku_full()).is_green
        assert not Server(0, baseline_gen3()).is_green

    def test_place_and_remove(self):
        server = Server(0, baseline_gen3())
        vm = make_vm()
        server.place(vm, vm.cores, vm.memory_gb)
        assert server.allocated_cores == 4
        assert server.vm_count == 1
        server.remove(vm.vm_id)
        assert server.is_empty
        assert server.free_cores == 80

    def test_double_place_rejected(self):
        server = Server(0, baseline_gen3())
        vm = make_vm()
        server.place(vm, 4, 16.0)
        with pytest.raises(SimulationError):
            server.place(vm, 4, 16.0)

    def test_remove_unknown_rejected(self):
        with pytest.raises(SimulationError):
            Server(0, baseline_gen3()).remove(99)

    def test_overcommit_rejected(self):
        server = Server(0, baseline_gen3())
        with pytest.raises(SimulationError):
            server.place(make_vm(cores=100, memory_gb=16), 100, 16.0)

    def test_densities(self):
        server = Server(0, baseline_gen3())
        server.place(make_vm(cores=40, memory_gb=384.0), 40, 384.0)
        assert server.core_density == pytest.approx(0.5)
        assert server.memory_density == pytest.approx(0.5)

    def test_touched_memory_tracking(self):
        server = Server(0, baseline_gen3())
        vm = make_vm(cores=8, memory_gb=76.8, max_memory_fraction=0.5)
        server.place(vm, 8, 76.8)
        assert server.touched_memory_fraction == pytest.approx(
            76.8 * 0.5 / 768.0
        )
        server.remove(vm.vm_id)
        assert server.touched_memory_fraction == pytest.approx(0.0)

    def test_full_node_dedicates_server(self):
        server = Server(0, baseline_gen3())
        vm = make_vm(full_node=True)
        server.place(vm, 80, 768.0)
        assert server.dedicated
        assert not server.fits(1, 1.0)

    def test_remove_full_node_clears_dedicated(self):
        # Once the full-node VM departs, the server must rejoin the
        # general pool: dedicated cleared, capacity fully released.
        server = Server(0, baseline_gen3())
        vm = make_vm(full_node=True)
        server.place(vm, 80, 768.0)
        server.remove(vm.vm_id)
        assert not server.dedicated
        assert server.is_empty
        assert server.fits(1, 1.0)


class TestBestFit:
    def test_prefers_non_empty(self):
        empty = Server(0, baseline_gen3())
        busy = Server(1, baseline_gen3())
        busy.place(make_vm(vm_id=9), 4, 16.0)
        chosen = BestFitScheduler().choose(
            make_vm(vm_id=2), [empty, busy], 4, 16.0
        )
        assert chosen is busy

    def test_best_fit_by_remaining_cores(self):
        loose = Server(0, baseline_gen3())
        tight = Server(1, baseline_gen3())
        loose.place(make_vm(vm_id=8, cores=8), 8, 32.0)
        tight.place(make_vm(vm_id=9, cores=72, memory_gb=288.0), 72, 288.0)
        chosen = BestFitScheduler().choose(
            make_vm(vm_id=2), [loose, tight], 4, 16.0
        )
        assert chosen is tight

    def test_none_when_nothing_fits(self):
        server = Server(0, baseline_gen3())
        chosen = BestFitScheduler().choose(
            make_vm(cores=100, memory_gb=16), [server], 100, 16.0
        )
        assert chosen is None

    def test_memory_constraint_respected(self):
        server = Server(0, baseline_gen3())
        server.place(make_vm(vm_id=5, cores=4, memory_gb=760.0), 4, 760.0)
        chosen = BestFitScheduler().choose(
            make_vm(vm_id=6, cores=4, memory_gb=32.0), [server], 4, 32.0
        )
        assert chosen is None

    def test_full_node_needs_empty_baseline(self):
        green = Server(0, greensku_full())
        busy_base = Server(1, baseline_gen3())
        busy_base.place(make_vm(vm_id=3), 4, 16.0)
        empty_base = Server(2, baseline_gen3())
        vm = make_vm(vm_id=4, full_node=True)
        chosen = BestFitScheduler().choose(
            vm, [green, busy_base, empty_base], 80, 768.0
        )
        assert chosen is empty_base

    def test_full_node_never_on_green(self):
        green = Server(0, greensku_full())
        vm = make_vm(full_node=True)
        assert BestFitScheduler().choose(vm, [green], 80, 768.0) is None
