"""Property-based fuzzing of the allocation substrate.

Hypothesis drives random placement/removal sequences and random traces
against the invariants the simulator must never violate: capacity
conservation, non-negative free resources, and idempotent accounting.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.allocation.cluster import ClusterSpec, adopt_everything, simulate
from repro.allocation.scheduler import BestFitScheduler, Server
from repro.allocation.traces import TraceParams, VmTrace
from repro.allocation.vm import VmRequest
from repro.hardware.sku import baseline_gen3, greensku_cxl


def make_vm(vm_id, cores, memory_gb, touch=0.5):
    return VmRequest(
        vm_id=vm_id,
        arrival_hours=0.0,
        lifetime_hours=1.0,
        cores=cores,
        memory_gb=memory_gb,
        generation=3,
        app_name="Redis",
        max_memory_fraction=touch,
    )


vm_shapes = st.lists(
    st.tuples(
        st.integers(min_value=1, max_value=16),  # cores
        st.floats(min_value=1.0, max_value=128.0),  # memory
        st.floats(min_value=0.0, max_value=1.0),  # touch fraction
    ),
    min_size=1,
    max_size=40,
)


class TestServerInvariants:
    @given(shapes=vm_shapes)
    @settings(deadline=None, max_examples=60)
    def test_place_remove_conserves_capacity(self, shapes):
        server = Server(0, baseline_gen3())
        placed = []
        for i, (cores, memory, touch) in enumerate(shapes):
            vm = make_vm(i, cores, memory, touch)
            if server.fits(cores, memory):
                server.place(vm, cores, memory)
                placed.append(vm)
            # Invariants hold after every operation.
            assert 0 <= server.free_cores <= server.total_cores
            assert -1e-9 <= server.free_memory_gb <= server.total_memory_gb
            assert server.allocated_cores == sum(v.cores for v in placed)
        for vm in placed:
            server.remove(vm.vm_id)
        assert server.is_empty
        assert server.free_cores == server.total_cores
        assert server.free_memory_gb == pytest.approx(
            server.total_memory_gb
        )
        assert server.touched_memory_fraction == pytest.approx(0.0)

    @given(shapes=vm_shapes)
    @settings(deadline=None, max_examples=30)
    def test_cxl_pool_conserved(self, shapes):
        server = Server(0, greensku_cxl())
        placed = []
        for i, (cores, memory, touch) in enumerate(shapes):
            vm = make_vm(i, cores, memory, touch)
            cxl = min(memory * 0.25, server.free_cxl_gb)
            if server.fits(cores, memory):
                server.place(vm, cores, memory, cxl_gb=cxl)
                placed.append(vm.vm_id)
            assert -1e-9 <= server.cxl_used_gb <= server.total_cxl_gb + 1e-9
            assert 0 <= server.cxl_utilization <= 1 + 1e-9
        for vm_id in placed:
            server.remove(vm_id)
        assert server.cxl_used_gb == pytest.approx(0.0)


class TestSchedulerInvariants:
    @given(
        shapes=vm_shapes,
        policy=st.sampled_from(["best-fit", "first-fit", "worst-fit"]),
    )
    @settings(deadline=None, max_examples=40)
    def test_chosen_server_always_fits(self, shapes, policy):
        servers = [Server(i, baseline_gen3()) for i in range(3)]
        scheduler = BestFitScheduler(policy)
        for i, (cores, memory, touch) in enumerate(shapes):
            vm = make_vm(i, cores, memory, touch)
            chosen = scheduler.choose(vm, servers, cores, memory)
            if chosen is not None:
                assert chosen.fits(cores, memory)
                chosen.place(vm, cores, memory)


class TestSimulationInvariants:
    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(deadline=None, max_examples=10)
    def test_placed_plus_rejected_equals_arrivals(self, seed):
        from repro.allocation.traces import generate_trace

        trace = generate_trace(
            seed=seed,
            params=TraceParams(duration_days=2, mean_concurrent_vms=40),
        )
        spec = ClusterSpec.of((baseline_gen3(), 5))
        outcome = simulate(trace, spec)
        assert outcome.placed_vms + len(outcome.rejected_vms) == len(
            trace.vms
        )

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(deadline=None, max_examples=8)
    def test_more_servers_never_more_rejections(self, seed):
        from repro.allocation.traces import generate_trace

        trace = generate_trace(
            seed=seed,
            params=TraceParams(duration_days=2, mean_concurrent_vms=40),
        )
        small = simulate(trace, ClusterSpec.of((baseline_gen3(), 4)))
        large = simulate(trace, ClusterSpec.of((baseline_gen3(), 8)))
        assert len(large.rejected_vms) <= len(small.rejected_vms)
