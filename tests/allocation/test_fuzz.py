"""Property-based fuzzing of the allocation substrate.

Hypothesis drives random placement/removal sequences and random traces
against the invariants the simulator must never violate: capacity
conservation, non-negative free resources, and idempotent accounting.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.allocation.cluster import ClusterSpec, adopt_everything, simulate
from repro.allocation.scheduler import BestFitScheduler, Server
from repro.allocation.traces import TraceParams, VmTrace
from repro.allocation.vm import VmRequest
from repro.core import telemetry
from repro.hardware.sku import baseline_gen3, greensku_cxl


def make_vm(vm_id, cores, memory_gb, touch=0.5):
    return VmRequest(
        vm_id=vm_id,
        arrival_hours=0.0,
        lifetime_hours=1.0,
        cores=cores,
        memory_gb=memory_gb,
        generation=3,
        app_name="Redis",
        max_memory_fraction=touch,
    )


vm_shapes = st.lists(
    st.tuples(
        st.integers(min_value=1, max_value=16),  # cores
        st.floats(min_value=1.0, max_value=128.0),  # memory
        st.floats(min_value=0.0, max_value=1.0),  # touch fraction
    ),
    min_size=1,
    max_size=40,
)


class TestServerInvariants:
    @given(shapes=vm_shapes)
    @settings(deadline=None, max_examples=60)
    def test_place_remove_conserves_capacity(self, shapes):
        server = Server(0, baseline_gen3())
        placed = []
        for i, (cores, memory, touch) in enumerate(shapes):
            vm = make_vm(i, cores, memory, touch)
            if server.fits(cores, memory):
                server.place(vm, cores, memory)
                placed.append(vm)
            # Invariants hold after every operation.
            assert 0 <= server.free_cores <= server.total_cores
            assert -1e-9 <= server.free_memory_gb <= server.total_memory_gb
            assert server.allocated_cores == sum(v.cores for v in placed)
        for vm in placed:
            server.remove(vm.vm_id)
        assert server.is_empty
        assert server.free_cores == server.total_cores
        assert server.free_memory_gb == pytest.approx(
            server.total_memory_gb
        )
        assert server.touched_memory_fraction == pytest.approx(0.0)

    @given(shapes=vm_shapes)
    @settings(deadline=None, max_examples=30)
    def test_cxl_pool_conserved(self, shapes):
        server = Server(0, greensku_cxl())
        placed = []
        for i, (cores, memory, touch) in enumerate(shapes):
            vm = make_vm(i, cores, memory, touch)
            cxl = min(memory * 0.25, server.free_cxl_gb)
            if server.fits(cores, memory):
                server.place(vm, cores, memory, cxl_gb=cxl)
                placed.append(vm.vm_id)
            assert -1e-9 <= server.cxl_used_gb <= server.total_cxl_gb + 1e-9
            assert 0 <= server.cxl_utilization <= 1 + 1e-9
        for vm_id in placed:
            server.remove(vm_id)
        assert server.cxl_used_gb == pytest.approx(0.0)


class TestSchedulerInvariants:
    @given(
        shapes=vm_shapes,
        policy=st.sampled_from(["best-fit", "first-fit", "worst-fit"]),
    )
    @settings(deadline=None, max_examples=40)
    def test_chosen_server_always_fits(self, shapes, policy):
        servers = [Server(i, baseline_gen3()) for i in range(3)]
        scheduler = BestFitScheduler(policy)
        for i, (cores, memory, touch) in enumerate(shapes):
            vm = make_vm(i, cores, memory, touch)
            chosen = scheduler.choose(vm, servers, cores, memory)
            if chosen is not None:
                assert chosen.fits(cores, memory)
                chosen.place(vm, cores, memory)


class TestSimulationInvariants:
    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(deadline=None, max_examples=10)
    def test_placed_plus_rejected_equals_arrivals(self, seed):
        from repro.allocation.traces import generate_trace

        trace = generate_trace(
            seed=seed,
            params=TraceParams(duration_days=2, mean_concurrent_vms=40),
        )
        spec = ClusterSpec.of((baseline_gen3(), 5))
        outcome = simulate(trace, spec)
        assert outcome.placed_vms + len(outcome.rejected_vms) == len(
            trace.vms
        )

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(deadline=None, max_examples=8)
    def test_more_servers_never_more_rejections(self, seed):
        from repro.allocation.traces import generate_trace

        trace = generate_trace(
            seed=seed,
            params=TraceParams(duration_days=2, mean_concurrent_vms=40),
        )
        small = simulate(trace, ClusterSpec.of((baseline_gen3(), 4)))
        large = simulate(trace, ClusterSpec.of((baseline_gen3(), 8)))
        assert len(large.rejected_vms) <= len(small.rejected_vms)


class TestTelemetryCounterGroundTruth:
    """Telemetry counters cross-checked against truth recomputed from
    the event log: for any trace and cluster, the counted placements,
    rejections, and departures must equal what the trace itself implies.
    """

    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        servers=st.integers(min_value=3, max_value=12),
    )
    @settings(deadline=None, max_examples=10)
    def test_counters_match_event_log(self, seed, servers):
        from repro.allocation.traces import generate_trace

        trace = generate_trace(
            seed=seed,
            params=TraceParams(duration_days=2, mean_concurrent_vms=40),
        )
        spec = ClusterSpec.of((baseline_gen3(), servers))
        with telemetry.capture() as tel:
            outcome = simulate(
                trace, spec, snapshot_hours=6.0, engine="indexed"
            )
        c = tel.counters

        # Ground truth from the trace + the outcome's rejected list.
        rejected = set(outcome.rejected_vms)
        placed = [vm for vm in trace.vms if vm.vm_id not in rejected]
        end = trace.duration_hours
        departed = sum(
            1
            for vm in placed
            if math.isfinite(vm.departure_hours)
            and vm.departure_hours <= end
        )

        assert c["alloc.replays"] == 1
        assert c["alloc.placements"] == len(placed) == outcome.placed_vms
        assert c["alloc.rejections"] == len(rejected)
        assert (
            c["alloc.placements"] + c["alloc.rejections"] == len(trace.vms)
        )
        assert c["alloc.departures"] == departed
        # Conservation: what was placed either departed or is still live.
        live = sum(
            1
            for vm in placed
            if not (
                math.isfinite(vm.departure_hours)
                and vm.departure_hours <= end
            )
        )
        assert c["alloc.placements"] == c["alloc.departures"] + live
        # Engine mutation counters agree with the replay loop's tallies
        # (two independently maintained counts of the same events).
        assert c["engine.places"] == c["alloc.placements"]
        assert c["engine.removes"] == c["alloc.departures"]
        assert c["alloc.snapshots"] == c["engine.snapshot_merges"]
        # Baseline-only, no adoption: exactly one engine query per VM.
        assert c["engine.queries"] == len(trace.vms)
        # No greens in the cluster -> no green or fallback placements.
        assert c["alloc.green_placements"] == 0
        assert c["alloc.fallback_placements"] == 0

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(deadline=None, max_examples=8)
    def test_green_counters_partition_placements(self, seed):
        from repro.allocation.traces import generate_trace

        trace = generate_trace(
            seed=seed,
            params=TraceParams(duration_days=2, mean_concurrent_vms=40),
        )
        spec = ClusterSpec.of((baseline_gen3(), 4), (greensku_cxl(), 4))
        with telemetry.capture() as tel:
            outcome = simulate(
                trace,
                spec,
                adoption=adopt_everything,
                snapshot_hours=6.0,
                engine="indexed",
            )
        c = tel.counters
        assert c["alloc.green_placements"] == outcome.green_placements
        assert c["alloc.fallback_placements"] == outcome.fallback_placements
        assert c["alloc.green_placements"] <= c["alloc.placements"]
        # Fallbacks are adopters that landed on baseline: disjoint from
        # green placements, bounded by total placements.
        assert (
            c["alloc.green_placements"] + c["alloc.fallback_placements"]
            <= c["alloc.placements"]
        )
        # Bucket probes only happen inside queries.
        assert c["engine.bucket_probes"] >= 0
        assert c["engine.queries"] >= c["alloc.placements"]
