"""Persistent trace store: npz round trips, hits, corruption fallback."""

import os
import pickle

import numpy as np
import pytest

from repro.allocation.columnar import (
    NPZ_SCHEMA,
    load_columns_npz,
    save_columns_npz,
)
from repro.allocation.store import (
    STORE_ENV,
    TraceStore,
    store_enabled,
)
from repro.allocation.traces import (
    TraceParams,
    generate_trace,
    production_trace_suite,
    suite_specs,
)
from repro.core import telemetry
from repro.core.errors import ConfigError
from repro.core.faults import corrupt_file

PARAMS = TraceParams(duration_days=2, mean_concurrent_vms=100)
SUITE_PARAMS = TraceParams(duration_days=2, mean_concurrent_vms=80)


@pytest.fixture
def store(tmp_path):
    return TraceStore(directory=tmp_path / "traces")


class TestNpzRoundTrip:
    def test_lossless(self, tmp_path):
        trace = generate_trace(seed=5, params=PARAMS)
        path = tmp_path / "t.npz"
        save_columns_npz(trace.columns, path)
        loaded = load_columns_npz(path)
        assert loaded == trace.columns
        assert loaded.digest() == trace.digest()
        assert loaded.to_vms() == trace.vms

    def test_schema_mismatch_rejected(self, tmp_path):
        trace = generate_trace(seed=5, params=PARAMS)
        path = tmp_path / "t.npz"
        arrays = {
            name: getattr(trace.columns, name)
            for name in (
                "vm_id", "arrival_hours", "lifetime_hours", "cores",
                "memory_gb", "generation", "app_index",
                "max_memory_fraction", "full_node",
            )
        }
        arrays["app_names"] = np.array(trace.columns.app_names)
        arrays["schema"] = np.array("repro-trace/0")
        np.savez(path, **arrays)
        with pytest.raises(ConfigError):
            load_columns_npz(path)

    def test_missing_column_rejected(self, tmp_path):
        path = tmp_path / "t.npz"
        np.savez(path, schema=np.array(NPZ_SCHEMA))
        with pytest.raises(ConfigError):
            load_columns_npz(path)

    def test_invalid_content_rejected(self, tmp_path):
        trace = generate_trace(seed=5, params=PARAMS)
        path = tmp_path / "t.npz"
        save_columns_npz(trace.columns, path)
        with np.load(path, allow_pickle=False) as data:
            arrays = {name: data[name] for name in data.files}
        cores = arrays["cores"].copy()
        cores[0] = -4
        arrays["cores"] = cores
        np.savez(path, **arrays)
        with pytest.raises(ConfigError):
            load_columns_npz(path)


class TestStore:
    def test_miss_then_hit(self, store):
        assert store.get(seed=5, params=PARAMS, name="t") is None
        trace = generate_trace(seed=5, params=PARAMS)
        store.put(5, PARAMS, trace.columns)
        loaded = store.get(seed=5, params=PARAMS, name="t")
        assert loaded is not None
        assert loaded.name == "t"
        assert loaded.digest() == trace.digest()
        assert loaded.vms == trace.vms
        assert (store.hits, store.misses) == (1, 1)

    def test_key_depends_on_seed_and_params(self, store):
        k = store.key(5, PARAMS)
        assert k != store.key(6, PARAMS)
        assert k != store.key(5, TraceParams(duration_days=3))

    def test_suite_hits_skip_generation(self, store):
        first = production_trace_suite(
            count=2, params=SUITE_PARAMS, store=store
        )
        assert (store.hits, store.misses) == (0, 2)
        with telemetry.capture() as tel:
            second = production_trace_suite(
                count=2, params=SUITE_PARAMS, store=store
            )
        # Every trace came from the store: nothing was generated.
        assert tel.counters.get("trace.store_hits") == 2
        assert "trace.generated" not in tel.counters
        assert (store.hits, store.misses) == (2, 2)
        assert [t.digest() for t in second] == [t.digest() for t in first]
        assert [t.name for t in second] == [t.name for t in first]

    def test_corrupted_entry_falls_back_to_generation(self, store):
        production_trace_suite(count=2, params=SUITE_PARAMS, store=store)
        specs = suite_specs(count=2, params=SUITE_PARAMS)
        seed, params, _name = specs[0]
        path = store.path(seed, params)
        path.write_bytes(b"not a zip file at all")
        with telemetry.capture() as tel:
            suite = production_trace_suite(
                count=2, params=SUITE_PARAMS, store=store
            )
        assert tel.counters["trace.generated"] == 1
        assert tel.counters["trace.store_hits"] == 1
        assert tel.counters["trace.store_misses"] == 1
        # The regenerated trace matches the pristine one...
        assert suite[0].digest() == generate_trace(
            seed, params, name="x"
        ).digest()
        # ...and the suite re-put a fresh entry (the corrupt one moved
        # to quarantine — see TestCorruptionQuarantine).
        assert store.get(seed, params, "again") is not None

    def test_truncated_entry_falls_back(self, store):
        trace = generate_trace(seed=5, params=PARAMS)
        path = store.put(5, PARAMS, trace.columns)
        path.write_bytes(path.read_bytes()[: path.stat().st_size // 2])
        assert store.get(seed=5, params=PARAMS, name="t") is None

    def test_parallel_generation_matches_serial(self, store, tmp_path):
        serial = production_trace_suite(count=3, params=SUITE_PARAMS)
        parallel = production_trace_suite(
            count=3,
            params=SUITE_PARAMS,
            jobs=2,
            store=TraceStore(directory=tmp_path / "par"),
        )
        assert [t.digest() for t in parallel] == [
            t.digest() for t in serial
        ]

    def test_store_pickles_with_trace(self, store):
        # parallel_map ships traces back from workers; the store must not
        # leak unpicklable state into them.
        trace = store.get(5, PARAMS, "t") or generate_trace(5, PARAMS)
        clone = pickle.loads(pickle.dumps(trace))
        assert clone.digest() == trace.digest()


class TestCorruptionQuarantine:
    """Corrupt entries are quarantined with telemetry — never silently
    regenerated in place, never raised to the caller."""

    def _entry(self, store):
        trace = generate_trace(seed=5, params=PARAMS)
        path = store.put(5, PARAMS, trace.columns)
        return trace, path

    def _quarantined_names(self, store):
        if not store.quarantine_dir.exists():
            return []
        return sorted(p.name for p in store.quarantine_dir.iterdir())

    def test_truncated_entry_quarantined(self, store):
        _trace, path = self._entry(store)
        corrupt_file(path, mode="truncate")
        with telemetry.capture() as tel:
            assert store.get(seed=5, params=PARAMS, name="t") is None
        assert tel.counters["trace.store_quarantined"] == 1
        assert tel.counters["trace.store_misses"] == 1
        assert "trace.store_hits" not in tel.counters
        assert store.quarantined == 1
        assert not path.exists()
        assert self._quarantined_names(store) == [
            f"{path.name}.quarantined"
        ]

    def test_hash_mismatch_quarantined(self, store):
        # Bit rot that leaves a structurally valid .npz: flip one value
        # in a column (still passing shape/range validation) while
        # keeping the stored content digest — only digest verification
        # can catch this.
        trace, path = self._entry(store)
        with np.load(path, allow_pickle=False) as data:
            arrays = {name: data[name] for name in data.files}
        cores = arrays["cores"].copy()
        cores[0] = 8 if cores[0] != 8 else 4  # plausible but wrong
        arrays["cores"] = cores
        np.savez(path, **arrays)
        with pytest.raises(ConfigError, match="digest mismatch"):
            load_columns_npz(path)
        with telemetry.capture() as tel:
            assert store.get(seed=5, params=PARAMS, name="t") is None
        assert tel.counters["trace.store_quarantined"] == 1
        assert not path.exists()

    def test_concurrent_writer_crash_mid_rename(self, store):
        # A writer that died between writing its temp file and renaming
        # it leaves scratch debris plus (at worst) a torn final entry
        # from an unrelated partial copy.  The scratch file must never
        # be read as an entry, and the torn entry must be quarantined.
        trace, path = self._entry(store)
        stale_tmp = path.with_name(f"{path.name}.tmp-99999")
        stale_tmp.write_bytes(path.read_bytes()[: path.stat().st_size // 3])
        corrupt_file(path, mode="truncate")
        with telemetry.capture() as tel:
            assert store.get(seed=5, params=PARAMS, name="t") is None
        assert tel.counters["trace.store_quarantined"] == 1
        assert stale_tmp.exists()  # debris untouched: it is evidence too
        # A fresh put() repairs the entry and the next lookup hits.
        store.put(5, PARAMS, trace.columns)
        loaded = store.get(seed=5, params=PARAMS, name="t")
        assert loaded is not None
        assert loaded.digest() == trace.digest()

    def test_garbled_zip_quarantined(self, store):
        _trace, path = self._entry(store)
        corrupt_file(path, mode="garble", seed=11)
        with telemetry.capture() as tel:
            assert store.get(seed=5, params=PARAMS, name="t") is None
        assert tel.counters["trace.store_quarantined"] == 1

    def test_suite_regenerates_after_quarantine(self, store):
        # End to end: corrupt one suite entry, rerun the suite — the
        # damaged seed regenerates bit-identically and the evidence
        # lands in quarantine (replacing the PR 4 silent fallback).
        production_trace_suite(count=2, params=SUITE_PARAMS, store=store)
        specs = suite_specs(count=2, params=SUITE_PARAMS)
        seed, params, _name = specs[0]
        path = store.path(seed, params)
        corrupt_file(path, mode="truncate")
        with telemetry.capture() as tel:
            suite = production_trace_suite(
                count=2, params=SUITE_PARAMS, store=store
            )
        assert tel.counters["trace.store_quarantined"] == 1
        assert tel.counters["trace.generated"] == 1
        assert suite[0].digest() == generate_trace(
            seed, params, name="x"
        ).digest()
        assert self._quarantined_names(store) == [
            f"{path.name}.quarantined"
        ]


class TestMmapStreaming:
    """mmap=True streams columns off disk instead of eager-copying."""

    def test_mmap_load_equals_eager(self, tmp_path):
        trace = generate_trace(seed=5, params=PARAMS)
        path = tmp_path / "t.npz"
        save_columns_npz(trace.columns, path)
        streamed = load_columns_npz(path, mmap=True)
        assert streamed == trace.columns
        assert streamed.digest() == trace.digest()
        # The hot numeric columns really are memory-mapped views, not
        # copies (ascontiguousarray drops the subclass but keeps the
        # buffer).
        assert isinstance(streamed.arrival_hours.base, np.memmap)
        assert isinstance(streamed.cores.base, np.memmap)
        assert not streamed.arrival_hours.flags.owndata

    def test_store_counts_hit_kinds(self, store):
        trace = generate_trace(seed=5, params=PARAMS)
        store.put(5, PARAMS, trace.columns)
        with telemetry.capture() as tel:
            eager = store.get(5, PARAMS, "t")
            streamed = store.get(5, PARAMS, "t", mmap=True)
        assert eager is not None and streamed is not None
        assert streamed.digest() == eager.digest()
        assert tel.counters["trace.store_hits"] == 2
        assert tel.counters["trace.store_hits_eager"] == 1
        assert tel.counters["trace.store_hits_mmap"] == 1

    def test_mmap_corruption_still_quarantined(self, store):
        trace = generate_trace(seed=5, params=PARAMS)
        path = store.put(5, PARAMS, trace.columns)
        corrupt_file(path, mode="truncate")
        with telemetry.capture() as tel:
            assert store.get(5, PARAMS, "t", mmap=True) is None
        assert tel.counters["trace.store_quarantined"] == 1
        assert not path.exists()


class TestDtypeDriftQuarantine:
    """Entries whose column dtypes drifted from the schema are rejected
    in both load paths (never silently cast) and quarantined by the
    store."""

    def _drifted_entry(self, store):
        trace = generate_trace(seed=5, params=PARAMS)
        path = store.put(5, PARAMS, trace.columns)
        with np.load(path, allow_pickle=False) as data:
            arrays = {name: data[name] for name in data.files}
        arrays["cores"] = arrays["cores"].astype(np.int32)
        np.savez(path, **arrays)
        return path

    @pytest.mark.parametrize("mmap", [False, True])
    def test_load_rejects_drifted_dtype(self, store, mmap):
        path = self._drifted_entry(store)
        with pytest.raises(ConfigError, match="dtype drifted"):
            load_columns_npz(path, mmap=mmap)

    @pytest.mark.parametrize("mmap", [False, True])
    def test_store_quarantines_drifted_entry(self, store, mmap):
        path = self._drifted_entry(store)
        with telemetry.capture() as tel:
            assert store.get(5, PARAMS, "t", mmap=mmap) is None
        assert tel.counters["trace.store_quarantined"] == 1
        assert not path.exists()
        assert store.quarantine_dir.exists()


class TestStoreEnabled:
    def test_env_overrides(self, monkeypatch):
        monkeypatch.setenv(STORE_ENV, "1")
        assert store_enabled()
        for off in ("0", "false", "no", ""):
            monkeypatch.setenv(STORE_ENV, off)
            assert not store_enabled()

    def test_follows_result_cache(self, monkeypatch):
        monkeypatch.delenv(STORE_ENV, raising=False)
        monkeypatch.delenv("REPRO_CACHE", raising=False)
        assert not store_enabled()
        monkeypatch.setenv("REPRO_CACHE", "1")
        assert store_enabled()
