"""Indexed placement engine: equivalence with the reference implementation.

The contract under test is *bit-identical behavior*: for any trace,
cluster, policy, and adoption mix, the indexed engine must pick the same
server as the reference scan for every single VM and produce an equal
``SimOutcome`` — including the exact snapshot statistics.  Two layers:

- whole-replay equivalence over generated traces (seeds x policies x
  baseline-only / mixed / multi-generation clusters),
- adversarial churn on the engine itself: randomized place/remove
  sequences (full-node dedication, servers emptying and refilling,
  memory-tight requests) where every ``choose`` is cross-checked against
  ``BestFitScheduler.choose`` over the same servers.
"""

import random

import pytest

from repro.allocation.cluster import (
    ClusterSpec,
    adopt_everything,
    adopt_nothing,
    outcome_digest,
    replay_on_engine,
    resolve_engine,
    simulate,
)
from repro.allocation.index import PlacementEngine
from repro.allocation.scheduler import PLACEMENT_POLICIES, BestFitScheduler, Server
from repro.allocation.traces import TraceParams, VmTrace, generate_trace
from repro.allocation.vm import VmRequest
from repro.core import telemetry
from repro.core.errors import ConfigError, SimulationError
from repro.core.rng import RngFactory
from repro.hardware.sku import (
    baseline_gen1,
    baseline_gen2,
    baseline_gen3,
    greensku_cxl,
    greensku_efficient,
    greensku_full,
)

SEEDS = (1, 2, 3, 4, 5)

#: Trace knobs chosen to exercise the tricky paths: full-node VMs far
#: above their natural share (dedication/parking), short window with
#: frequent snapshots (stats churn), multiple generations.
CHURN_PARAMS = TraceParams(
    duration_days=3,
    mean_concurrent_vms=90,
    full_node_fraction=0.01,
)


def both_outcomes(trace, spec, adoption, policy, snapshot_hours=3.0):
    kwargs = dict(
        adoption=adoption,
        snapshot_hours=snapshot_hours,
        scheduler=BestFitScheduler(policy),
    )
    reference = simulate(trace, spec, engine="reference", **kwargs)
    indexed = simulate(trace, spec, engine="indexed", **kwargs)
    return reference, indexed


class TestReplayEquivalence:
    """Bit-identical SimOutcome across seeds, policies, and clusters."""

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("policy", PLACEMENT_POLICIES)
    def test_baseline_only(self, seed, policy):
        trace = generate_trace(seed=seed, params=CHURN_PARAMS)
        spec = ClusterSpec.of((baseline_gen3(), 26))
        reference, indexed = both_outcomes(
            trace, spec, adopt_nothing, policy
        )
        assert reference == indexed
        assert outcome_digest(reference) == outcome_digest(indexed)

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("policy", PLACEMENT_POLICIES)
    def test_mixed_cluster(self, seed, policy):
        trace = generate_trace(seed=seed, params=CHURN_PARAMS)
        spec = ClusterSpec.of((baseline_gen3(), 16), (greensku_full(), 10))
        reference, indexed = both_outcomes(
            trace, spec, adopt_everything, policy
        )
        assert reference == indexed
        assert outcome_digest(reference) == outcome_digest(indexed)

    @pytest.mark.parametrize("seed", SEEDS[:3])
    @pytest.mark.parametrize("policy", PLACEMENT_POLICIES)
    def test_multi_generation_cluster(self, seed, policy):
        # Generation routing active: three baseline pools plus greens,
        # partial adoption so fungible fallback happens too.
        trace = generate_trace(seed=seed, params=CHURN_PARAMS)

        def adoption(app_name, generation):
            return 1.25 if generation == 3 else None

        spec = ClusterSpec.of(
            (baseline_gen1(), 8),
            (baseline_gen2(), 9),
            (baseline_gen3(), 10),
            (greensku_cxl(), 8),
        )
        reference, indexed = both_outcomes(trace, spec, adoption, policy)
        assert reference == indexed
        assert outcome_digest(reference) == outcome_digest(indexed)

    def test_tight_capacity_rejections_match(self):
        # Undersized cluster: the rejected-VM lists must agree exactly.
        trace = generate_trace(seed=9, params=CHURN_PARAMS)
        spec = ClusterSpec.of((baseline_gen3(), 6))
        reference, indexed = both_outcomes(
            trace, spec, adopt_nothing, "best-fit"
        )
        assert reference.rejected_vms == indexed.rejected_vms
        assert not reference.feasible
        assert reference == indexed

    def test_scaled_adoption_equivalence(self):
        trace = generate_trace(seed=6, params=CHURN_PARAMS)

        def adoption(app_name, generation):
            return 1.4 if len(app_name) % 2 else None

        spec = ClusterSpec.of((baseline_gen3(), 18), (greensku_efficient(), 8))
        reference, indexed = both_outcomes(trace, spec, adoption, "best-fit")
        assert reference == indexed

    def test_snapshot_stats_exact_fields(self):
        # Equality must hold on the exact internal sums, not just means.
        trace = generate_trace(seed=2, params=CHURN_PARAMS)
        spec = ClusterSpec.of((baseline_gen3(), 16), (greensku_full(), 10))
        reference, indexed = both_outcomes(
            trace, spec, adopt_everything, "best-fit", snapshot_hours=1.5
        )
        for attr in ("baseline_stats", "green_stats"):
            ref_stats = getattr(reference, attr)
            idx_stats = getattr(indexed, attr)
            assert ref_stats.samples == idx_stats.samples
            assert ref_stats._cum == idx_stats._cum
            assert ref_stats.canonical() == idx_stats.canonical()


class TestTelemetryDifferential:
    """Telemetry enabled vs disabled must not change anything observable.

    The instrumentation layer's core guarantee: bit-identical
    ``SimOutcome`` (including the exact snapshot sums behind the
    digest), identical sizing results, and untouched RNG streams —
    for both the reference and the indexed engine.
    """

    ENGINES = ("reference", "indexed")

    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("seed", SEEDS[:3])
    def test_outcome_bit_identical(self, engine, seed):
        trace = generate_trace(seed=seed, params=CHURN_PARAMS)
        spec = ClusterSpec.of((baseline_gen3(), 16), (greensku_full(), 10))
        kwargs = dict(
            adoption=adopt_everything,
            snapshot_hours=3.0,
            scheduler=BestFitScheduler("best-fit"),
            engine=engine,
        )
        plain = simulate(trace, spec, **kwargs)
        with telemetry.capture() as tel:
            instrumented = simulate(trace, spec, **kwargs)
        assert plain == instrumented
        assert outcome_digest(plain) == outcome_digest(instrumented)
        # The capture really saw the replay (guards against silently
        # passing because instrumentation never ran).
        assert tel.counters["alloc.replays"] == 1
        assert tel.counters["alloc.placements"] == plain.placed_vms
        assert tel.timers["alloc.replay"].count == 1

    @pytest.mark.parametrize("engine", ENGINES)
    def test_right_size_identical(self, engine, monkeypatch):
        from repro.gsf.sizing import right_size

        monkeypatch.setenv("REPRO_ALLOC_ENGINE", engine)
        trace = generate_trace(
            seed=7,
            params=TraceParams(duration_days=2, mean_concurrent_vms=60),
        )
        plain = right_size(trace, baseline_gen3())
        with telemetry.capture() as tel:
            instrumented = right_size(trace, baseline_gen3())
        assert plain == instrumented
        assert tel.counters["sizing.searches"] == 1
        assert tel.counters["sizing.simulate_calls"] > 0

    def test_trace_generation_rng_unperturbed(self):
        plain = generate_trace(seed=11, params=CHURN_PARAMS)
        with telemetry.capture():
            instrumented = generate_trace(seed=11, params=CHURN_PARAMS)
        assert plain == instrumented

    def test_rng_streams_draw_identically_inside_capture(self):
        # Draw from named streams with instrumented simulations running
        # in between: the sequences must match an uninstrumented run.
        def draws():
            rngs = RngFactory(123)
            first = rngs.stream("a").random(32).tolist()
            simulate(
                generate_trace(seed=3, params=CHURN_PARAMS),
                ClusterSpec.of((baseline_gen3(), 20)),
                engine="indexed",
            )
            second = rngs.stream("b").random(32).tolist()
            return first, second

        plain = draws()
        with telemetry.capture():
            instrumented = draws()
        assert plain == instrumented

    def test_queueing_result_identical(self):
        from repro.perf.queueing import simulate_fcfs

        kwargs = dict(
            offered_qps=800.0, cores=4, mean_service_ms=2.0,
            requests=4000, warmup=500, seed=5,
        )
        plain = simulate_fcfs(**kwargs)
        with telemetry.capture() as tel:
            instrumented = simulate_fcfs(**kwargs)
        assert plain == instrumented
        assert tel.counters["queueing.runs"] == 1
        assert tel.counters["queueing.events_simulated"] == 4500

    @pytest.mark.parametrize("engine", ENGINES)
    def test_counters_deterministic_across_repeats(self, engine):
        # Design rule 3: identical workload -> identical counters.
        trace = generate_trace(seed=2, params=CHURN_PARAMS)
        spec = ClusterSpec.of((baseline_gen3(), 16), (greensku_full(), 10))

        def run():
            with telemetry.capture() as tel:
                simulate(
                    trace, spec, adoption=adopt_everything, engine=engine
                )
            return tel.counters

        assert run() == run()


class TestEngineSelection:
    def test_resolve_engine_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_ALLOC_ENGINE", raising=False)
        assert resolve_engine() == "indexed"
        assert resolve_engine("reference") == "reference"

    def test_resolve_engine_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_ALLOC_ENGINE", "reference")
        assert resolve_engine() == "reference"
        # Explicit argument wins over the environment.
        assert resolve_engine("indexed") == "indexed"

    def test_resolve_engine_rejects_unknown(self):
        with pytest.raises(ConfigError):
            resolve_engine("quantum")


def make_vm(vm_id, cores, memory_gb, generation=3, full_node=False):
    return VmRequest(
        vm_id=vm_id,
        arrival_hours=0.0,
        lifetime_hours=10.0,
        cores=cores,
        memory_gb=memory_gb,
        generation=generation,
        app_name="Redis",
        full_node=full_node,
    )


class TestAdversarialChurn:
    """Randomized place/remove churn: every choice equals the reference.

    The engine and a plain server list evolve in lockstep; after every
    mutation a batch of probe requests (including boundary-exact memory
    sizes and full-node requests) must pick the same server under all
    three policies.
    """

    SKUS = (
        baseline_gen3,
        baseline_gen3,
        baseline_gen2,
        baseline_gen1,
        greensku_full,
    )

    def _build(self, rng, n_servers):
        servers = []
        for sid in range(n_servers):
            sku = rng.choice(self.SKUS)()
            servers.append(Server(sid, sku))
        return servers

    @pytest.mark.parametrize("policy", PLACEMENT_POLICIES)
    @pytest.mark.parametrize("seed", (0, 1, 2))
    def test_churn_choices_match_reference(self, policy, seed):
        rng = random.Random(seed)
        servers = self._build(rng, 20)
        base_pool = [s for s in servers if not s.is_green]
        green_pool = [s for s in servers if s.is_green]
        base_by_gen = {}
        for server in base_pool:
            base_by_gen.setdefault(server.sku.generation, []).append(server)
        engine = PlacementEngine(servers, policy=policy)
        scheduler = BestFitScheduler(policy)

        def reference_baseline_pool(generation):
            if len(base_by_gen) > 1 and generation in base_by_gen:
                return base_by_gen[generation]
            return base_pool

        live = []  # (server, vm_id) placed pairs
        next_id = 0
        for step in range(400):
            # Churn mix: mostly placements, some removals, rare
            # full-node dedications.
            action = rng.random()
            if action < 0.12 and live:
                server, vm_id = live.pop(rng.randrange(len(live)))
                engine.remove(server, vm_id)
                continue
            full_node = action > 0.95
            generation = rng.choice((1, 2, 3))
            if full_node:
                cores = {1: 64, 2: 64, 3: 80}[generation]
                memory_gb = float({1: 384, 2: 512, 3: 768}[generation])
            else:
                cores = rng.choice((1, 2, 4, 8, 16, 32))
                memory_gb = cores * rng.choice((1.0, 2.0, 4.0, 8.0))
            vm = make_vm(
                next_id, cores, memory_gb,
                generation=generation, full_node=full_node,
            )
            next_id += 1

            green_choice = engine.choose_green(vm, cores, memory_gb)
            ref_green = (
                None
                if vm.full_node
                else scheduler.choose(vm, green_pool, cores, memory_gb)
            )
            assert green_choice is ref_green

            base_choice = engine.choose_baseline(vm, cores, memory_gb)
            ref_base = scheduler.choose(
                vm, reference_baseline_pool(vm.generation), cores, memory_gb
            )
            assert base_choice is ref_base

            # Place on the baseline choice (or green when only greens
            # fit) to keep the state evolving.
            target = base_choice or green_choice
            if target is not None:
                engine.place(target, vm, cores, memory_gb)
                live.append((target, vm.vm_id))

        # Drain everything: the engine must agree on an empty cluster too.
        while live:
            server, vm_id = live.pop()
            engine.remove(server, vm_id)
        probe = make_vm(next_id, 4, 16.0)
        assert engine.choose_baseline(probe, 4, 16.0) is scheduler.choose(
            probe, reference_baseline_pool(3), 4, 16.0
        )

    def test_memory_boundary_exact(self):
        # A request matching the free memory exactly (and one epsilon
        # beyond) must resolve identically in both implementations.
        server = Server(0, baseline_gen3())
        filler = make_vm(1, 4, 700.0)
        engine = PlacementEngine([server], policy="best-fit")
        engine.place(server, filler, 4, 700.0)
        scheduler = BestFitScheduler()
        free = server.free_memory_gb
        for memory_gb in (free, free + 1e-10, free + 1.0, free - 1e-10):
            vm = make_vm(2, 2, memory_gb)
            assert engine.choose_baseline(vm, 2, memory_gb) is (
                scheduler.choose(vm, [server], 2, memory_gb)
            )

    def test_emptied_server_rejoins_empty_view(self):
        # A server that empties out must become eligible for full-node
        # VMs again (and count as empty for the prefer-non-empty rule).
        server = Server(0, baseline_gen3())
        engine = PlacementEngine([server], policy="best-fit")
        vm = make_vm(1, 4, 16.0)
        engine.place(server, vm, 4, 16.0)
        full = make_vm(2, 80, 768.0, full_node=True)
        assert engine.choose_baseline(full, 80, 768.0) is None
        engine.remove(server, 1)
        assert engine.choose_baseline(full, 80, 768.0) is server

    def test_dedicated_server_is_parked(self):
        server = Server(0, baseline_gen3())
        spare = Server(1, baseline_gen3())
        engine = PlacementEngine([server, spare], policy="best-fit")
        full = make_vm(1, 80, 768.0, full_node=True)
        assert engine.choose_baseline(full, 80, 768.0) is server
        engine.place(server, full, 80, 768.0)
        # The dedicated server is invisible to every query...
        small = make_vm(2, 1, 1.0)
        assert engine.choose_baseline(small, 1, 1.0) is spare
        # ...until its full-node VM departs.
        engine.remove(server, 1)
        engine.place(spare, small, 1, 1.0)
        assert engine.choose_baseline(make_vm(3, 1, 1.0), 1, 1.0) is spare

    def test_duplicate_server_rejected(self):
        server = Server(0, baseline_gen3())
        engine = PlacementEngine([server])
        with pytest.raises(SimulationError):
            engine.add_server(Server(0, baseline_gen3()))

    def test_remove_occupied_server_rejected(self):
        server = Server(0, baseline_gen3())
        engine = PlacementEngine([server])
        engine.place(server, make_vm(1, 4, 16.0), 4, 16.0)
        with pytest.raises(SimulationError):
            engine.remove_server(0)


class TestProbeReuse:
    """replay_on_engine + add/remove deltas equals fresh simulate calls."""

    def test_resize_and_reset_between_probes(self):
        trace = generate_trace(
            seed=4,
            params=TraceParams(duration_days=2, mean_concurrent_vms=60),
        )
        sku = baseline_gen3()
        engine = PlacementEngine(policy="best-fit")
        counts = 0

        def probe(n):
            nonlocal counts
            engine.reset()
            while counts < n:
                engine.add_server(Server(counts, sku))
                counts += 1
            while counts > n:
                counts -= 1
                engine.remove_server(counts)
            spec = ClusterSpec.of((sku, n))
            return replay_on_engine(trace, spec, engine).feasible

        # Scrambled probe order exercises grow, shrink, and re-grow.
        for n in (12, 4, 9, 2, 30, 7, 9):
            expected = simulate(
                trace, ClusterSpec.of((sku, n)), snapshot_hours=1e9
            ).feasible
            assert probe(n) == expected

    def test_reset_restores_pristine_floats(self):
        server = Server(0, baseline_gen3())
        engine = PlacementEngine([server])
        # Place/remove cycles that would leave float dust behind.
        for i, memory in enumerate((0.1, 0.3, 0.7, 123.456)):
            engine.place(server, make_vm(10 + i, 1, memory), 1, memory)
        engine.remove(server, 10)
        engine.reset()
        assert server.free_memory_gb == server.total_memory_gb
        assert server.free_cores == server.total_cores
        assert server.is_empty and not server.dedicated
