"""Synthetic VM trace generator tests."""

import math

import numpy as np
import pytest

from repro.allocation.traces import (
    TraceParams,
    VmTrace,
    _assign_app,
    generate_trace,
    production_trace_suite,
)
from repro.allocation.vm import VmRequest
from repro.core.errors import ConfigError
from repro.perf.apps import APP_BY_NAME, FLEET_CORE_HOUR_SHARE, apps_in_class


@pytest.fixture(scope="module")
def trace():
    return generate_trace(
        seed=11, params=TraceParams(duration_days=7, mean_concurrent_vms=150)
    )


class TestDeterminism:
    def test_same_seed_same_trace(self, trace):
        again = generate_trace(
            seed=11,
            params=TraceParams(duration_days=7, mean_concurrent_vms=150),
        )
        assert len(again.vms) == len(trace.vms)
        assert all(
            a.arrival_hours == b.arrival_hours and a.cores == b.cores
            for a, b in zip(trace.vms, again.vms)
        )

    def test_different_seeds_differ(self, trace):
        other = generate_trace(
            seed=12,
            params=TraceParams(duration_days=7, mean_concurrent_vms=150),
        )
        assert len(other.vms) != len(trace.vms) or any(
            a.cores != b.cores for a, b in zip(trace.vms, other.vms)
        )


class TestShape:
    def test_arrivals_sorted(self, trace):
        arrivals = [vm.arrival_hours for vm in trace.vms]
        assert arrivals == sorted(arrivals)

    def test_arrivals_within_window(self, trace):
        assert all(
            0 <= vm.arrival_hours < trace.duration_hours for vm in trace.vms
        )

    def test_vm_ids_unique(self, trace):
        ids = [vm.vm_id for vm in trace.vms]
        assert len(set(ids)) == len(ids)

    def test_population_near_target(self, trace):
        """Little's law: mean concurrent VMs ~ target (loosely)."""
        times = np.linspace(12, trace.duration_hours - 12, 12)
        pops = [
            sum(
                1
                for vm in trace.vms
                if vm.arrival_hours <= t < vm.departure_hours
            )
            for t in times
        ]
        assert np.mean(pops) == pytest.approx(150, rel=0.5)

    def test_core_sizes_from_menu(self, trace):
        menu = set(trace.params.core_sizes) | {80}  # full-node shape
        assert all(vm.cores in menu for vm in trace.vms)

    def test_apps_are_known(self, trace):
        assert all(vm.app_name in APP_BY_NAME for vm in trace.vms)

    def test_generations_valid(self, trace):
        assert all(vm.generation in (1, 2, 3) for vm in trace.vms)

    def test_gen3_dominates(self, trace):
        gen3 = sum(1 for vm in trace.vms if vm.generation == 3)
        assert gen3 > len(trace.vms) * 0.4

    def test_full_node_vms_have_server_shape(self, trace):
        for vm in trace.vms:
            if vm.full_node:
                assert vm.cores == 80
                assert vm.memory_gb == pytest.approx(80 * 9.6)

    def test_memory_fractions_in_unit_interval(self, trace):
        assert all(0 <= vm.max_memory_fraction <= 1 for vm in trace.vms)

    def test_peak_concurrent_cores_positive(self, trace):
        assert trace.peak_concurrent_cores() > 0


class TestParams:
    def test_mean_lifetime(self):
        p = TraceParams(
            short_lifetime_hours=4,
            long_lifetime_hours=100,
            long_lived_fraction=0.5,
        )
        assert p.mean_lifetime_hours == pytest.approx(52.0)

    def test_arrival_rate_littles_law(self):
        p = TraceParams(mean_concurrent_vms=100)
        assert p.arrival_rate_per_hour == pytest.approx(
            100 / p.mean_lifetime_hours
        )

    def test_weight_validation(self):
        with pytest.raises(ConfigError):
            TraceParams(core_size_weights=(1.0,))

    def test_weight_sum_validation(self):
        with pytest.raises(ConfigError):
            TraceParams(
                core_sizes=(1, 2),
                core_size_weights=(0.5, 0.6),
            )

    def test_generation_mix_validation(self):
        with pytest.raises(ConfigError):
            TraceParams(generation_mix=(0.5, 0.5, 0.5))

    @pytest.mark.parametrize("field", [
        "short_lifetime_hours",
        "long_lifetime_hours",
        "full_node_lifetime_hours",
    ])
    @pytest.mark.parametrize("value", [0.0, -1.0, math.inf, math.nan])
    def test_lifetime_validation(self, field, value):
        with pytest.raises(ConfigError):
            TraceParams(**{field: value})

    @pytest.mark.parametrize("field", ["mem_touch_alpha", "mem_touch_beta"])
    @pytest.mark.parametrize("value", [0.0, -2.75, math.inf, math.nan])
    def test_mem_touch_validation(self, field, value):
        with pytest.raises(ConfigError):
            TraceParams(**{field: value})

    def test_long_lived_fraction_validation(self):
        with pytest.raises(ConfigError):
            TraceParams(long_lived_fraction=1.5)


def _spike_vm(vm_id, arrival, lifetime, cores):
    return VmRequest(
        vm_id=vm_id,
        arrival_hours=arrival,
        lifetime_hours=lifetime,
        cores=cores,
        memory_gb=cores * 4.0,
        generation=3,
        app_name="Redis",
    )


def _sampled_peak(trace, step_hours):
    """The pre-sweep implementation: sample every ``step_hours``."""
    times = np.arange(0.0, trace.duration_hours + step_hours, step_hours)
    peak = 0
    for t in times:
        live = sum(
            vm.cores
            for vm in trace.vms
            if vm.arrival_hours <= t < vm.departure_hours
        )
        peak = max(peak, live)
    return peak


class TestPeakConcurrentCores:
    def test_exact_sweep_catches_interior_spike(self):
        """Regression: step sampling misses peaks between sample points.

        The spike VMs live on [0.5, 1.5) — strictly inside the old
        sampler's (0, 2) gap — so sampling reports only the long-lived
        background VM while the event sweep sees background + spike.
        """
        vms = [_spike_vm(0, 0.0, 48.0, 8)]
        vms += [_spike_vm(1 + i, 0.5, 1.0, 16) for i in range(3)]
        trace = VmTrace(
            name="spike", params=TraceParams(duration_days=2), vms=tuple(vms)
        )
        assert _sampled_peak(trace, step_hours=2.0) == 8
        assert trace.peak_concurrent_cores() == 8 + 3 * 16
        # step_hours is deprecated: still accepted (and ignored) but warns.
        with pytest.deprecated_call():
            assert trace.peak_concurrent_cores(step_hours=2.0) == 8 + 3 * 16

    def test_half_open_interval_back_to_back(self):
        """A departure releases cores before an arrival at the same time."""
        vms = (_spike_vm(0, 0.0, 5.0, 32), _spike_vm(1, 5.0, 5.0, 32))
        trace = VmTrace(
            name="handoff", params=TraceParams(duration_days=1), vms=vms
        )
        assert trace.peak_concurrent_cores() == 32

    def test_matches_sampling_on_generated_trace(self, trace):
        """On real traces the sweep can only find >= the sampled peak."""
        exact = trace.peak_concurrent_cores()
        assert exact >= _sampled_peak(trace, step_hours=2.0)

    def test_empty_trace(self):
        trace = VmTrace(
            name="empty", params=TraceParams(duration_days=1), vms=()
        )
        assert trace.peak_concurrent_cores() == 0


class TestAssignApp:
    @staticmethod
    def _old_assign_app(rng):
        """Pre-hoist implementation: rebuild the tables on every call."""
        classes = list(FLEET_CORE_HOUR_SHARE.keys())
        shares = np.array([FLEET_CORE_HOUR_SHARE[c] for c in classes])
        shares = shares / shares.sum()
        app_class = classes[rng.choice(len(classes), p=shares)]
        members = apps_in_class(app_class)
        return members[rng.integers(len(members))].name

    def test_identical_rng_draws(self):
        """The hoisted tables change no draw: same names, same rng state."""
        rng_new = np.random.default_rng(1234)
        rng_old = np.random.default_rng(1234)
        new_names = [_assign_app(rng_new) for _ in range(500)]
        old_names = [self._old_assign_app(rng_old) for _ in range(500)]
        assert new_names == old_names
        # The streams consumed exactly the same entropy.
        assert rng_new.integers(1 << 30) == rng_old.integers(1 << 30)


class TestSuite:
    def test_suite_count(self):
        suite = production_trace_suite(
            count=5, params=TraceParams(duration_days=3, mean_concurrent_vms=60)
        )
        assert len(suite) == 5

    def test_suite_names_unique(self):
        suite = production_trace_suite(
            count=4, params=TraceParams(duration_days=3, mean_concurrent_vms=60)
        )
        names = [t.name for t in suite]
        assert len(set(names)) == 4

    def test_suite_traces_vary(self):
        suite = production_trace_suite(
            count=3, params=TraceParams(duration_days=3, mean_concurrent_vms=60)
        )
        sizes = [len(t.vms) for t in suite]
        assert len(set(sizes)) > 1

    def test_zero_count_rejected(self):
        with pytest.raises(ConfigError):
            production_trace_suite(count=0)
