"""Synthetic VM trace generator tests."""

import math

import numpy as np
import pytest

from repro.allocation.traces import (
    TraceParams,
    generate_trace,
    production_trace_suite,
)
from repro.core.errors import ConfigError
from repro.perf.apps import APP_BY_NAME


@pytest.fixture(scope="module")
def trace():
    return generate_trace(
        seed=11, params=TraceParams(duration_days=7, mean_concurrent_vms=150)
    )


class TestDeterminism:
    def test_same_seed_same_trace(self, trace):
        again = generate_trace(
            seed=11,
            params=TraceParams(duration_days=7, mean_concurrent_vms=150),
        )
        assert len(again.vms) == len(trace.vms)
        assert all(
            a.arrival_hours == b.arrival_hours and a.cores == b.cores
            for a, b in zip(trace.vms, again.vms)
        )

    def test_different_seeds_differ(self, trace):
        other = generate_trace(
            seed=12,
            params=TraceParams(duration_days=7, mean_concurrent_vms=150),
        )
        assert len(other.vms) != len(trace.vms) or any(
            a.cores != b.cores for a, b in zip(trace.vms, other.vms)
        )


class TestShape:
    def test_arrivals_sorted(self, trace):
        arrivals = [vm.arrival_hours for vm in trace.vms]
        assert arrivals == sorted(arrivals)

    def test_arrivals_within_window(self, trace):
        assert all(
            0 <= vm.arrival_hours < trace.duration_hours for vm in trace.vms
        )

    def test_vm_ids_unique(self, trace):
        ids = [vm.vm_id for vm in trace.vms]
        assert len(set(ids)) == len(ids)

    def test_population_near_target(self, trace):
        """Little's law: mean concurrent VMs ~ target (loosely)."""
        times = np.linspace(12, trace.duration_hours - 12, 12)
        pops = [
            sum(
                1
                for vm in trace.vms
                if vm.arrival_hours <= t < vm.departure_hours
            )
            for t in times
        ]
        assert np.mean(pops) == pytest.approx(150, rel=0.5)

    def test_core_sizes_from_menu(self, trace):
        menu = set(trace.params.core_sizes) | {80}  # full-node shape
        assert all(vm.cores in menu for vm in trace.vms)

    def test_apps_are_known(self, trace):
        assert all(vm.app_name in APP_BY_NAME for vm in trace.vms)

    def test_generations_valid(self, trace):
        assert all(vm.generation in (1, 2, 3) for vm in trace.vms)

    def test_gen3_dominates(self, trace):
        gen3 = sum(1 for vm in trace.vms if vm.generation == 3)
        assert gen3 > len(trace.vms) * 0.4

    def test_full_node_vms_have_server_shape(self, trace):
        for vm in trace.vms:
            if vm.full_node:
                assert vm.cores == 80
                assert vm.memory_gb == pytest.approx(80 * 9.6)

    def test_memory_fractions_in_unit_interval(self, trace):
        assert all(0 <= vm.max_memory_fraction <= 1 for vm in trace.vms)

    def test_peak_concurrent_cores_positive(self, trace):
        assert trace.peak_concurrent_cores(step_hours=6) > 0


class TestParams:
    def test_mean_lifetime(self):
        p = TraceParams(
            short_lifetime_hours=4,
            long_lifetime_hours=100,
            long_lived_fraction=0.5,
        )
        assert p.mean_lifetime_hours == pytest.approx(52.0)

    def test_arrival_rate_littles_law(self):
        p = TraceParams(mean_concurrent_vms=100)
        assert p.arrival_rate_per_hour == pytest.approx(
            100 / p.mean_lifetime_hours
        )

    def test_weight_validation(self):
        with pytest.raises(ConfigError):
            TraceParams(core_size_weights=(1.0,))

    def test_weight_sum_validation(self):
        with pytest.raises(ConfigError):
            TraceParams(
                core_sizes=(1, 2),
                core_size_weights=(0.5, 0.6),
            )

    def test_generation_mix_validation(self):
        with pytest.raises(ConfigError):
            TraceParams(generation_mix=(0.5, 0.5, 0.5))


class TestSuite:
    def test_suite_count(self):
        suite = production_trace_suite(
            count=5, params=TraceParams(duration_days=3, mean_concurrent_vms=60)
        )
        assert len(suite) == 5

    def test_suite_names_unique(self):
        suite = production_trace_suite(
            count=4, params=TraceParams(duration_days=3, mean_concurrent_vms=60)
        )
        names = [t.name for t in suite]
        assert len(set(names)) == 4

    def test_suite_traces_vary(self):
        suite = production_trace_suite(
            count=3, params=TraceParams(duration_days=3, mean_concurrent_vms=60)
        )
        sizes = [len(t.vms) for t in suite]
        assert len(set(sizes)) > 1

    def test_zero_count_rejected(self):
        with pytest.raises(ConfigError):
            production_trace_suite(count=0)
