"""Window semantics for traces whose first arrival is not at t=0.

Real ingested captures open mid-day; the trace window is
``[start_hours, start_hours + duration]``, not ``[0, duration]``.  The
strongest statement of the fix is **time-shift invariance**: adding a
constant to every arrival must not change a replay's outcome digest,
``peak_concurrent_cores``, or the lifetime-fragmentation metrics.
"""

import numpy as np
import pytest

from repro.allocation.cluster import (
    ClusterSpec,
    ENGINES,
    adopt_everything,
    outcome_digest,
    replay_columnar,
    simulate,
)
from repro.allocation.columnar import ColumnarTrace
from repro.allocation.lifetimes import stranded_capacity_fraction
from repro.allocation.traces import TraceParams, VmTrace, generate_trace
from repro.hardware.sku import baseline_gen2, baseline_gen3, greensku_full

PARAMS = TraceParams(duration_days=2.0, mean_concurrent_vms=120)
SHIFTS = (5.5, 100.0, 24.0 * 365)


def _cluster():
    return ClusterSpec.of(
        (baseline_gen3(), 10), (baseline_gen2(), 6), (greensku_full(), 6)
    )


def _shifted(trace: VmTrace, offset: float) -> VmTrace:
    columns = trace.columns
    shifted = ColumnarTrace(
        app_names=columns.app_names,
        vm_id=columns.vm_id,
        arrival_hours=columns.arrival_hours + offset,
        lifetime_hours=columns.lifetime_hours,
        cores=columns.cores,
        memory_gb=columns.memory_gb,
        generation=columns.generation,
        app_index=columns.app_index,
        max_memory_fraction=columns.max_memory_fraction,
        full_node=columns.full_node,
    )
    return VmTrace(
        name=f"{trace.name}+{offset:g}h",
        params=trace.params,
        columns=shifted,
    )


@pytest.fixture(scope="module")
def base_trace():
    return generate_trace(seed=4, params=PARAMS)


class TestWindowProperties:
    def test_start_end_hours(self, base_trace):
        assert base_trace.start_hours == float(
            base_trace.columns.arrival_hours.min()
        )
        assert base_trace.end_hours == (
            base_trace.start_hours + base_trace.duration_hours
        )

    @pytest.mark.parametrize("offset", SHIFTS)
    def test_shift_moves_window(self, base_trace, offset):
        shifted = _shifted(base_trace, offset)
        assert shifted.start_hours == pytest.approx(
            base_trace.start_hours + offset
        )
        assert shifted.duration_hours == base_trace.duration_hours

    def test_empty_trace_window(self):
        empty = ColumnarTrace.from_vms(())
        assert empty.start_hours() == 0.0


class TestTimeShiftInvariance:
    @pytest.mark.parametrize("offset", SHIFTS)
    def test_simulate_row_path(self, base_trace, offset):
        golden = outcome_digest(
            simulate(
                base_trace, _cluster(), adopt_everything,
                snapshot_hours=5.0, engine="reference",
            )
        )
        shifted = outcome_digest(
            simulate(
                _shifted(base_trace, offset), _cluster(), adopt_everything,
                snapshot_hours=5.0, engine="reference",
            )
        )
        assert shifted == golden

    @pytest.mark.parametrize("offset", SHIFTS)
    @pytest.mark.parametrize("engine", ENGINES)
    def test_replay_columnar_every_engine(self, base_trace, offset, engine):
        golden = outcome_digest(
            replay_columnar(
                base_trace, _cluster(), adopt_everything,
                snapshot_hours=5.0, engine=engine, chunk_events=64,
            )
        )
        shifted = outcome_digest(
            replay_columnar(
                _shifted(base_trace, offset), _cluster(), adopt_everything,
                snapshot_hours=5.0, engine=engine, chunk_events=64,
            )
        )
        assert shifted == golden

    @pytest.mark.parametrize("offset", SHIFTS)
    def test_peak_concurrent_cores_invariant(self, base_trace, offset):
        assert (
            _shifted(base_trace, offset).peak_concurrent_cores()
            == base_trace.peak_concurrent_cores()
        )

    def test_peak_matches_brute_force_on_offset_trace(self, base_trace):
        trace = _shifted(base_trace, 100.0)
        columns = trace.columns
        # Brute force: sweep concurrency at every arrival instant.
        peak = 0
        for t in columns.arrival_hours:
            alive = (columns.arrival_hours <= t) & (
                columns.arrival_hours + columns.lifetime_hours > t
            )
            peak = max(peak, int(columns.cores[alive].sum()))
        assert trace.peak_concurrent_cores() == peak

    @pytest.mark.parametrize("offset", (5.5, 100.0))
    def test_stranded_capacity_invariant(self, base_trace, offset):
        small = base_trace.filter(
            np.arange(base_trace.columns.n) < 150
        )
        shifted = _shifted(small, offset)
        base_value = stranded_capacity_fraction(
            small, snapshot_hours=12.0, min_servers=6
        )
        shifted_value = stranded_capacity_fraction(
            shifted, snapshot_hours=12.0, min_servers=6
        )
        assert shifted_value == pytest.approx(base_value)
