"""Packing metrics tests."""

import numpy as np
import pytest

from repro.allocation.cluster import ClusterSpec, adopt_nothing, simulate
from repro.allocation.packing import cdf, fraction_below, packing_point
from repro.allocation.traces import TraceParams, generate_trace
from repro.core.errors import ConfigError
from repro.hardware.sku import baseline_gen3


class TestCdf:
    def test_sorted_output(self):
        xs, ps = cdf([0.5, 0.1, 0.9])
        assert list(xs) == [0.1, 0.5, 0.9]
        assert list(ps) == pytest.approx([1 / 3, 2 / 3, 1.0])

    def test_single_value(self):
        xs, ps = cdf([0.4])
        assert list(ps) == [1.0]

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            cdf([])


class TestFractionBelow:
    def test_basic(self):
        assert fraction_below([0.2, 0.5, 0.9], 0.6) == pytest.approx(2 / 3)

    def test_all_below(self):
        assert fraction_below([0.1, 0.2], 0.6) == 1.0

    def test_boundary_value_is_inclusive(self):
        # A server sitting exactly at the threshold counts as within it:
        # utilization == 0.75 does NOT need CXL expansion.
        assert fraction_below([0.5, 0.75, 0.9], 0.75) == pytest.approx(
            2 / 3
        )

    def test_all_at_threshold(self):
        assert fraction_below([0.75, 0.75], 0.75) == 1.0

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            fraction_below([], 0.5)


class TestPackingPoint:
    @pytest.fixture(scope="class")
    def outcome(self):
        trace = generate_trace(
            seed=4, params=TraceParams(duration_days=2, mean_concurrent_vms=40)
        )
        return simulate(
            trace, ClusterSpec.of((baseline_gen3(), 12)), adoption=adopt_nothing
        )

    def test_baseline_point(self, outcome):
        point = packing_point(outcome, "t", kind="baseline")
        assert 0 < point.mean_core_density <= 1
        assert 0 <= point.mean_memory_density <= 1

    def test_green_point_empty_cluster(self, outcome):
        point = packing_point(outcome, "t", kind="green")
        assert point.mean_core_density == 0.0

    def test_unknown_kind_rejected(self, outcome):
        with pytest.raises(ConfigError):
            packing_point(outcome, "t", kind="mixed")
