"""Trace-conformance suite for the Azure vmtable ingestion pipeline.

Locks down the tentpole contracts: every ingested trace satisfies the
replay preconditions (sorted non-negative arrivals, strictly positive
lifetimes, catalog-domain shapes), store round-trips are bit-identical
through both load paths, malformed input degrades row by row with exact
accounting, and ingestion is a pure function of the file bytes.
"""

import gzip
import io

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.allocation.columnar import COLUMN_NAMES
from repro.allocation.ingest import (
    AZURE_SCHEMA,
    CORE_BUCKETS,
    MEMORY_BUCKETS,
    MIN_LIFETIME_HOURS,
    AzureIngestKey,
    azure_trace_suite,
    bundled_sample_path,
    ingest_azure_vm_trace,
    resolve_trace_backend,
    trace_suite,
)
from repro.allocation.store import TraceStore
from repro.allocation.traces import _app_tables
from repro.core import telemetry
from repro.core.errors import ConfigError


def _write(tmp_path, text, name="table.csv", compress=False):
    path = tmp_path / (name + (".gz" if compress else ""))
    if compress:
        with open(path, "wb") as raw:
            with gzip.GzipFile(fileobj=raw, mode="wb", mtime=0) as gz:
                gz.write(text.encode("utf-8"))
    else:
        path.write_text(text)
    return path


def _row(
    vmid="vm-a",
    created="3600",
    deleted="7200",
    category="Interactive",
    cores="2",
    memory="4",
    p95="40.0",
):
    return (
        f"{vmid},sub,dep,{created},{deleted},55.0,12.0,{p95},"
        f"{category},{cores},{memory}"
    )


class TestIngestInvariants:
    """The replay preconditions, checked on the bundled sample."""

    @pytest.fixture(scope="class")
    def sample(self):
        trace, report = ingest_azure_vm_trace(
            bundled_sample_path(), name="azure-sample"
        )
        return trace, report

    def test_arrivals_sorted_and_non_negative(self, sample):
        trace, _ = sample
        arrivals = trace.columns.arrival_hours
        assert np.all(np.diff(arrivals) >= 0)
        assert np.all(arrivals >= 0)

    def test_lifetimes_strictly_positive(self, sample):
        trace, _ = sample
        assert np.all(trace.columns.lifetime_hours >= MIN_LIFETIME_HOURS)

    def test_shapes_in_catalog_domain(self, sample):
        trace, _ = sample
        assert set(np.unique(trace.columns.cores)) <= set(
            CORE_BUCKETS.values()
        )
        assert set(np.unique(trace.columns.memory_gb)) <= set(
            MEMORY_BUCKETS.values()
        )

    def test_generations_and_apps_in_domain(self, sample):
        trace, _ = sample
        assert set(np.unique(trace.columns.generation)) <= {1, 2, 3}
        apps = _app_tables()
        assert trace.columns.app_names == apps.flat_names
        assert trace.columns.app_index.min() >= 0
        assert trace.columns.app_index.max() < len(apps.flat_names)

    def test_vm_ids_renumbered(self, sample):
        trace, _ = sample
        n = trace.columns.n
        assert np.array_equal(
            trace.columns.vm_id, np.arange(n, dtype=np.int64)
        )

    def test_memory_fraction_in_unit_interval(self, sample):
        trace, _ = sample
        mmf = trace.columns.max_memory_fraction
        assert np.all((mmf > 0) & (mmf <= 1.0))

    def test_window_preserves_offset(self, sample):
        trace, report = sample
        # The bundled sample deliberately starts mid-day.
        assert trace.start_hours == pytest.approx(5.5)
        assert report.start_hours == pytest.approx(5.5)
        assert trace.end_hours > trace.start_hours

    def test_report_accounting_consistent(self, sample):
        _, report = sample
        assert report.schema == AZURE_SCHEMA
        skipped = (
            report.rows_blank
            + report.rows_invalid
            + report.rows_duplicate
            + report.rows_truncated
        )
        assert report.rows_kept + skipped == report.rows_total
        assert report.rows_duplicate >= 2  # baked into the sample
        assert report.rows_blank >= 1
        assert report.rows_invalid >= 1
        assert report.out_of_order > 0

    def test_full_column_validation(self, sample):
        trace, _ = sample
        trace.columns.validate()  # must not raise

    def test_telemetry_counters(self, tmp_path):
        text = "\n".join([_row(vmid=f"vm-{i}") for i in range(5)]) + "\n"
        path = _write(tmp_path, text)
        with telemetry.capture() as tel:
            ingest_azure_vm_trace(path)
        assert tel.counters["trace.ingested"] == 1
        assert tel.counters["trace.ingest_kept"] == 5
        assert tel.counters["trace.ingest_chunks"] >= 1


class TestStoreRoundTrip:
    def test_eager_and_mmap_bit_identical(self, tmp_path):
        store = TraceStore(tmp_path / "store")
        path = bundled_sample_path()
        fresh, r_miss = ingest_azure_vm_trace(path, store=store)
        eager, r_eager = ingest_azure_vm_trace(path, store=store)
        mapped, r_mmap = ingest_azure_vm_trace(path, store=store, mmap=True)
        assert (r_miss.store, r_eager.store, r_mmap.store) == (
            "miss", "hit", "hit",
        )
        assert fresh.digest() == eager.digest() == mapped.digest()
        for name in COLUMN_NAMES:
            assert np.array_equal(
                getattr(fresh.columns, name),
                getattr(mapped.columns, name),
            ), name

    def test_rebase_keys_separately(self, tmp_path):
        store = TraceStore(tmp_path / "store")
        path = bundled_sample_path()
        plain, _ = ingest_azure_vm_trace(path, store=store)
        rebased, report = ingest_azure_vm_trace(
            path, store=store, rebase_time=True
        )
        assert report.store == "miss"  # different key, not a false hit
        assert rebased.start_hours == 0.0
        assert plain.digest() != rebased.digest()

    def test_corrupt_entry_quarantined_and_reparsed(self, tmp_path):
        store = TraceStore(tmp_path / "store")
        path = bundled_sample_path()
        first, _ = ingest_azure_vm_trace(path, store=store)
        entries = list((tmp_path / "store").glob("*.npz"))
        assert len(entries) == 1
        entries[0].write_bytes(b"not a zip archive")
        again, report = ingest_azure_vm_trace(path, store=store)
        assert report.store == "miss"
        assert again.digest() == first.digest()
        assert list((tmp_path / "store" / "quarantine").iterdir())

    def test_key_is_content_addressed(self):
        key = AzureIngestKey(source_digest="ab" * 32)
        assert key.schema == AZURE_SCHEMA
        assert "ab" * 32 in repr(key)


class TestAdversarialInput:
    def test_blank_fields_skipped(self, tmp_path):
        text = "\n".join(
            [
                _row(vmid="vm-1"),
                _row(vmid="", created="3600"),
                _row(vmid="vm-2", created=""),
                _row(vmid="vm-3", cores=""),
                _row(vmid="vm-4", memory=""),
            ]
        ) + "\n"
        trace, report = ingest_azure_vm_trace(_write(tmp_path, text))
        assert report.rows_kept == 1
        assert report.rows_blank == 4
        assert trace.columns.n == 1

    def test_unknown_buckets_invalid(self, tmp_path):
        text = "\n".join(
            [
                _row(vmid="vm-1"),
                _row(vmid="vm-2", cores="7"),
                _row(vmid="vm-3", memory="9999"),
                _row(vmid="vm-4", created="-50"),
                _row(vmid="vm-5", created="bogus"),
                _row(vmid="vm-6", created="7200", deleted="3600"),
            ]
        ) + "\n"
        _, report = ingest_azure_vm_trace(_write(tmp_path, text))
        assert report.rows_kept == 1
        assert report.rows_invalid == 5

    def test_duplicate_vm_ids_first_wins(self, tmp_path):
        text = "\n".join(
            [
                _row(vmid="vm-dup", created="3600", cores="2"),
                _row(
                    vmid="vm-dup", created="9000", deleted="20000",
                    cores="8",
                ),
                _row(vmid="vm-2"),
            ]
        ) + "\n"
        trace, report = ingest_azure_vm_trace(_write(tmp_path, text))
        assert report.rows_duplicate == 1
        assert trace.columns.n == 2
        assert 8 not in trace.columns.cores

    def test_truncated_last_line(self, tmp_path):
        text = (
            _row(vmid="vm-1")
            + "\n"
            + _row(vmid="vm-2")
            + "\n"
            + "vm-3,sub,dep,360"  # cut mid-field, no trailing newline
        )
        trace, report = ingest_azure_vm_trace(_write(tmp_path, text))
        assert report.rows_truncated == 1
        assert report.rows_kept == 2
        assert trace.columns.n == 2

    def test_short_row_mid_file_is_invalid_not_truncated(self, tmp_path):
        text = (
            _row(vmid="vm-1") + "\n" + "vm-2,sub,dep\n" + _row(vmid="vm-3")
            + "\n"
        )
        _, report = ingest_azure_vm_trace(_write(tmp_path, text))
        assert report.rows_invalid == 1
        assert report.rows_truncated == 0
        assert report.rows_kept == 2

    def test_out_of_order_rows_sorted(self, tmp_path):
        text = "\n".join(
            [
                _row(vmid="vm-1", created="9000", deleted="20000"),
                _row(vmid="vm-2", created="3600", deleted="20000"),
                _row(vmid="vm-3", created="7200", deleted="20000"),
            ]
        ) + "\n"
        trace, report = ingest_azure_vm_trace(_write(tmp_path, text))
        assert report.out_of_order > 0
        assert np.all(np.diff(trace.columns.arrival_hours) >= 0)

    def test_optional_header_tolerated(self, tmp_path):
        text = (
            "vmid,subscriptionid,deploymentid,vmcreated,vmdeleted,"
            "maxcpu,avgcpu,p95maxcpu,vmcategory,vmcorecountbucket,"
            "vmmemorybucket\n" + _row() + "\n"
        )
        trace, report = ingest_azure_vm_trace(_write(tmp_path, text))
        assert report.rows_kept == 1
        assert trace.columns.n == 1

    def test_zero_usable_rows_raises(self, tmp_path):
        text = _row(vmid="", created="") + "\n"
        with pytest.raises(ConfigError, match="no usable rows"):
            ingest_azure_vm_trace(_write(tmp_path, text))

    def test_bad_gzip_raises(self, tmp_path):
        path = tmp_path / "broken.csv.gz"
        path.write_bytes(b"\x1f\x8b" + b"\x00" * 16)
        with pytest.raises((OSError, EOFError, gzip.BadGzipFile)):
            ingest_azure_vm_trace(path)

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(ConfigError, match="not found"):
            ingest_azure_vm_trace(tmp_path / "nope.csv")


def _render_rows(rows):
    buffer = io.StringIO()
    for row in rows:
        buffer.write(",".join(str(field) for field in row) + "\n")
    return buffer.getvalue()


_vm_rows = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=10**6),  # vmid suffix
        st.integers(min_value=0, max_value=10**6),  # created seconds
        st.one_of(
            st.none(),  # blank vmdeleted: alive at capture end
            st.integers(min_value=0, max_value=2 * 10**6),
        ),
        st.sampled_from(sorted(CORE_BUCKETS)),
        st.sampled_from(sorted(MEMORY_BUCKETS)),
        st.sampled_from(
            ["Interactive", "Delay-insensitive", "Unknown", ""]
        ),
    ),
    min_size=1,
    max_size=60,
)


class TestIngestProperties:
    @given(rows=_vm_rows)
    @settings(
        deadline=None,
        max_examples=40,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_invariants_hold_for_any_table(self, tmp_path, rows):
        text = _render_rows(
            [
                (
                    f"vm-{suffix}", "sub", "dep", created,
                    "" if deleted is None else max(deleted, created),
                    "50.0", "10.0", "45.0", category, cores, memory,
                )
                for suffix, created, deleted, cores, memory, category
                in rows
            ]
        )
        path = tmp_path / "fuzz.csv"
        path.write_text(text)
        try:
            trace, report = ingest_azure_vm_trace(path)
        except ConfigError:
            # Only legal when literally nothing was usable.
            return
        columns = trace.columns
        assert np.all(np.diff(columns.arrival_hours) >= 0)
        assert np.all(columns.arrival_hours >= 0)
        assert np.all(columns.lifetime_hours >= MIN_LIFETIME_HOURS)
        assert set(np.unique(columns.cores)) <= set(CORE_BUCKETS.values())
        assert set(np.unique(columns.memory_gb)) <= set(
            MEMORY_BUCKETS.values()
        )
        assert set(np.unique(columns.generation)) <= {1, 2, 3}
        assert columns.app_index.max() < len(columns.app_names)
        skipped = (
            report.rows_blank + report.rows_invalid
            + report.rows_duplicate + report.rows_truncated
        )
        assert report.rows_kept + skipped == report.rows_total
        assert report.rows_kept == columns.n
        columns.validate()

    @given(rows=_vm_rows, data=st.data())
    @settings(
        deadline=None,
        max_examples=25,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_row_order_does_not_matter(self, tmp_path, rows, data):
        # Unique ids and arrivals: with ties broken by file order the
        # property would not hold, so the strategy removes the ties.
        full = [
            (
                f"vm-{i}-{suffix}", "sub", "dep", created * 7 + i,
                created * 7 + i + 3600, "50.0", "10.0", "45.0",
                category, cores, memory,
            )
            for i, (suffix, created, _d, cores, memory, category)
            in enumerate(rows)
        ]
        permutation = data.draw(st.permutations(full))
        a = tmp_path / "a.csv"
        b = tmp_path / "b.csv"
        a.write_text(_render_rows(full))
        b.write_text(_render_rows(permutation))
        trace_a, _ = ingest_azure_vm_trace(a)
        trace_b, _ = ingest_azure_vm_trace(b)
        assert trace_a.digest() == trace_b.digest()

    def test_gzip_and_plain_identical(self, tmp_path):
        text = "\n".join([_row(vmid=f"vm-{i}") for i in range(20)]) + "\n"
        plain = _write(tmp_path, text, name="t.csv")
        packed = _write(tmp_path, text, name="t.csv", compress=True)
        a, _ = ingest_azure_vm_trace(plain)
        b, _ = ingest_azure_vm_trace(packed)
        assert a.digest() == b.digest()


class TestSuiteDispatch:
    def test_backend_resolution(self, monkeypatch):
        assert resolve_trace_backend() == "synthetic"
        assert resolve_trace_backend("azure") == "azure"
        monkeypatch.setenv("REPRO_TRACE_BACKEND", "azure")
        assert resolve_trace_backend() == "azure"
        with pytest.raises(ConfigError, match="unknown trace backend"):
            resolve_trace_backend("gcp")

    def test_synthetic_suite_unchanged(self):
        from repro.allocation.traces import production_trace_suite

        suite = trace_suite(backend="synthetic", count=2)
        reference = production_trace_suite(count=2)
        assert [t.digest() for t in suite] == [
            t.digest() for t in reference
        ]

    def test_azure_suite_uses_bundled_sample(self):
        suite = trace_suite(backend="azure", count=5)
        assert len(suite) == 1  # one bundled file, fewer than asked
        assert suite[0].name == "vmtable_sample"

    def test_azure_suite_custom_directory(self, tmp_path, monkeypatch):
        text = "\n".join([_row(vmid=f"vm-{i}") for i in range(6)]) + "\n"
        _write(tmp_path, text, name="one.csv")
        _write(tmp_path, text, name="two.csv", compress=True)
        monkeypatch.setenv("REPRO_AZURE_TRACE_DIR", str(tmp_path))
        suite = azure_trace_suite()
        assert [t.name for t in suite] == ["one", "two"]

    def test_empty_directory_rejected(self, tmp_path):
        with pytest.raises(ConfigError, match="no .csv"):
            azure_trace_suite(directory=tmp_path)
