"""Streaming columnar replay: chunked-vs-row equivalence, golden digests."""

import pytest

from repro.allocation.cluster import (
    ClusterSpec,
    ENGINES,
    adopt_everything,
    adopt_nothing,
    outcome_digest,
    replay_columnar,
    simulate,
)
from repro.allocation.columnar import ColumnarTrace
from repro.allocation.traces import TraceParams, VmTrace, generate_trace
from repro.core import telemetry
from repro.core.errors import ConfigError
from repro.hardware.sku import baseline_gen2, baseline_gen3, greensku_full

PARAMS = TraceParams(duration_days=2.0, mean_concurrent_vms=120)

SEEDS = (1, 2, 3, 4, 5)

#: Chunk sizes the equivalence contract is stated over: degenerate
#: (every event its own chunk), interior, and whole-trace.
CHUNKS = (1, 64, 10**9)


def _cluster():
    return ClusterSpec.of(
        (baseline_gen3(), 10), (baseline_gen2(), 6), (greensku_full(), 6)
    )


def _tiny_cluster():
    # Small enough that rejections happen, exercising the skip-departure
    # path for VMs that never placed.
    return ClusterSpec.of((baseline_gen3(), 2), (greensku_full(), 1))


class TestChunkedVsRowEquivalence:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_golden_digest_across_engines_and_chunks(self, seed):
        """Row-based reference digest == every engine × chunk size."""
        trace = generate_trace(seed, PARAMS)
        cluster = _cluster()
        golden = outcome_digest(
            simulate(
                trace,
                cluster,
                adopt_everything,
                snapshot_hours=5.0,
                engine="reference",
            )
        )
        for engine in ENGINES:
            for chunk in CHUNKS:
                digest = outcome_digest(
                    replay_columnar(
                        trace,
                        cluster,
                        adopt_everything,
                        snapshot_hours=5.0,
                        engine=engine,
                        chunk_events=chunk,
                    )
                )
                assert digest == golden, (seed, engine, chunk)

    def test_rejections_equivalent(self):
        trace = generate_trace(9, PARAMS)
        cluster = _tiny_cluster()
        golden = simulate(
            trace, cluster, adopt_nothing, snapshot_hours=5.0,
            engine="reference",
        )
        assert golden.rejected_vms, "fixture must actually reject VMs"
        for engine in ENGINES:
            for chunk in CHUNKS:
                outcome = replay_columnar(
                    trace, cluster, adopt_nothing, snapshot_hours=5.0,
                    engine=engine, chunk_events=chunk,
                )
                assert outcome_digest(outcome) == outcome_digest(golden)

    def test_rows_never_materialized(self):
        trace = generate_trace(1, PARAMS)
        assert trace._rows is None
        replay_columnar(trace, _cluster(), adopt_everything)
        assert trace._rows is None


class TestReplayColumnarApi:
    def test_unsorted_trace_rejected(self):
        trace = generate_trace(1, PARAMS)
        columns = trace.columns
        shuffled = ColumnarTrace(
            app_names=columns.app_names,
            vm_id=columns.vm_id,
            arrival_hours=columns.arrival_hours[::-1].copy(),
            lifetime_hours=columns.lifetime_hours,
            cores=columns.cores,
            memory_gb=columns.memory_gb,
            generation=columns.generation,
            app_index=columns.app_index,
            max_memory_fraction=columns.max_memory_fraction,
            full_node=columns.full_node,
        )
        bad = VmTrace(name="shuffled", params=PARAMS, columns=shuffled)
        with pytest.raises(ConfigError, match="sorted by arrival"):
            replay_columnar(bad, _cluster())

    def test_bad_snapshot_interval_rejected(self):
        trace = generate_trace(1, PARAMS)
        with pytest.raises(ConfigError, match="snapshot interval"):
            replay_columnar(trace, _cluster(), snapshot_hours=0)

    def test_unknown_engine_rejected(self):
        trace = generate_trace(1, PARAMS)
        with pytest.raises(ConfigError, match="unknown allocation engine"):
            replay_columnar(trace, _cluster(), engine="gpu")

    def test_telemetry_counters(self):
        trace = generate_trace(1, PARAMS)
        with telemetry.capture() as tel:
            replay_columnar(
                trace, _cluster(), adopt_everything, chunk_events=64
            )
        assert tel.counters["alloc.columnar_replays"] == 1
        assert tel.counters["alloc.event_chunks"] >= 2
