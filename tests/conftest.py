"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.allocation.traces import TraceParams, generate_trace
from repro.carbon.model import CarbonModel
from repro.gsf.framework import Gsf
from repro.hardware.datacenter import DataCenterConfig, appendix_config
from repro.hardware.rack import RackConfig
from repro.hardware.sku import (
    baseline_gen3,
    greensku_cxl,
    greensku_efficient,
    greensku_full,
)


@pytest.fixture(scope="session")
def carbon_model():
    """The default (open-data, Table VI) carbon model."""
    return CarbonModel()


@pytest.fixture(scope="session")
def appendix_model():
    """The Section V worked-example parameterization."""
    return CarbonModel(appendix_config())


@pytest.fixture(scope="session")
def baseline_sku():
    return baseline_gen3()


@pytest.fixture(scope="session")
def efficient_sku():
    return greensku_efficient()


@pytest.fixture(scope="session")
def cxl_sku():
    return greensku_cxl()


@pytest.fixture(scope="session")
def full_sku():
    return greensku_full()


@pytest.fixture(scope="session")
def small_trace():
    """A small, fast trace for allocation/sizing tests."""
    return generate_trace(
        seed=42, params=TraceParams(duration_days=5.0, mean_concurrent_vms=80)
    )


@pytest.fixture(scope="session")
def medium_trace():
    """A mid-size trace for end-to-end GSF tests."""
    return generate_trace(
        seed=7, params=TraceParams(duration_days=7.0, mean_concurrent_vms=250)
    )


@pytest.fixture(scope="session")
def gsf():
    return Gsf()
