"""Fleet transition planner tests."""

import pytest

from repro.analysis.transition import (
    transition_scenario,
    transition_study,
)
from repro.core.errors import ConfigError


@pytest.fixture(scope="module")
def study():
    return transition_study(fleet_servers=10_000)


class TestScenario:
    def test_reference_flat(self, study):
        annuals = [y.annual_kg for y in study.reference.years]
        assert max(annuals) == pytest.approx(min(annuals))
        assert all(y.green_share == 0 for y in study.reference.years)

    def test_adoption_ramps_at_refresh_rate(self, study):
        shares = [y.green_share for y in study.adopt_now.years]
        assert shares[0] == pytest.approx(1 / 6)
        assert shares == sorted(shares)

    def test_annual_emissions_fall_with_adoption(self, study):
        annuals = [y.annual_kg for y in study.adopt_now.years]
        assert annuals[-1] < annuals[0]

    def test_cumulative_monotone(self, study):
        cums = [y.cumulative_kg for y in study.adopt_now.years]
        assert cums == sorted(cums)

    def test_year_lookup(self, study):
        record = study.adopt_now.year_record(2030)
        assert record.year == 2030
        with pytest.raises(ConfigError):
            study.adopt_now.year_record(1999)

    def test_invalid_params(self):
        with pytest.raises(ConfigError):
            transition_scenario("x", None, fleet_servers=0)
        with pytest.raises(ConfigError):
            transition_scenario("x", None, performance_scaling=0.9)


class TestStudy:
    def test_adopting_now_beats_delaying(self, study):
        assert (
            study.savings_by_2030_now > study.savings_by_2030_delayed > 0
        )

    def test_cost_of_delay_positive(self, study):
        assert study.cost_of_delay_kg > 0

    def test_savings_bounded_by_per_core_savings(self, study):
        # By 2030 only ~7/6 of a lifetime has passed: cumulative savings
        # must stay below the steady-state per-core savings (~24% after
        # scaling).
        assert study.savings_by_2030_now < 0.24

    def test_meaningful_savings_by_2030(self, study):
        # The Section I argument: starting now moves the 2030 number.
        assert study.savings_by_2030_now > 0.05

    def test_zero_delay_equals_now(self):
        study = transition_study(delay_years=0, fleet_servers=1_000)
        assert study.cost_of_delay_kg == pytest.approx(0.0)
