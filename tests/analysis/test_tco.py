"""TCO model tests (Section VII-A)."""

import pytest

from repro.analysis.tco import CostData, TcoModel, cost_efficient_sku
from repro.core.errors import ConfigError
from repro.hardware.sku import (
    baseline_gen3,
    greensku_cxl,
    greensku_efficient,
    greensku_full,
)


@pytest.fixture(scope="module")
def tco():
    return TcoModel()


class TestAssessment:
    def test_capex_positive(self, tco):
        assert tco.assess(baseline_gen3()).capex_usd > 0

    def test_total_is_capex_plus_opex(self, tco):
        a = tco.assess(greensku_full())
        assert a.total_usd == pytest.approx(a.capex_usd + a.opex_usd)

    def test_per_core(self, tco):
        a = tco.assess(baseline_gen3())
        assert a.usd_per_core == pytest.approx(a.total_usd / 80)

    def test_reuse_discount_applied(self, tco):
        # GreenSKU-Full's reused memory/SSDs cost less than new parts of
        # the same capacity would.
        full_price = tco.assess(greensku_full()).capex_usd
        all_new = TcoModel(CostData(reused_part_discount=1.0))
        assert all_new.assess(greensku_full()).capex_usd > full_price

    def test_more_power_more_opex(self, tco):
        # GreenSKU-Full draws more power than GreenSKU-CXL (reused SSDs).
        assert (
            tco.assess(greensku_full()).opex_usd
            > tco.assess(greensku_cxl()).opex_usd
        )


class TestPaperInsight:
    def test_cost_efficient_about_5pct_cheaper(self, tco):
        # Section VII-A: "a cost-efficient server SKU is only 5% less
        # costly compared to our carbon-efficient GreenSKU."
        delta = tco.per_core_delta(cost_efficient_sku(), greensku_full())
        assert 0.02 <= delta <= 0.08

    def test_greensku_cheaper_per_core_than_baseline(self, tco):
        # More cores per server amortize platform costs.
        assert (
            tco.assess(greensku_efficient()).usd_per_core
            < tco.assess(baseline_gen3()).usd_per_core
        )

    def test_cost_efficient_sku_has_no_reuse(self):
        sku = cost_efficient_sku()
        assert all(not spec.reused for spec, _ in sku.iter_parts())
        assert sku.cxl_memory_gb == 0


class TestValidation:
    def test_discount_bounds(self):
        with pytest.raises(ConfigError):
            CostData(reused_part_discount=1.5)
