"""Marginals-validation regression tests.

Pins the report schema, its KS distances against the bundled ingested
sample (development-generated goldens), and byte-determinism across
repeated runs and ``--jobs`` settings.
"""

import json

import numpy as np
import pytest

from repro.allocation.ingest import bundled_sample_path, ingest_azure_vm_trace
from repro.allocation.traces import TraceParams, generate_trace
from repro.analysis.marginals import (
    MARGINALS_SCHEMA,
    METRICS,
    fit_trace_params,
    ks_distance,
    marginals_report,
    validate_marginals_report,
)
from repro.core import runner

#: KS distances of the bundled sample vs the default synthetic reference
#: (seed 7).  These are content goldens: they move only when the sample,
#: the generator, or the ingestion schema changes — update alongside
#: the digests in benchmarks/golden_ingest_digests.json.
GOLDEN_KS = {
    "core_size": 0.2324,
    "memory_gb": 0.1559,
    "lifetime_hours": 0.2991,
    "interarrival_hours": 0.1615,
}


@pytest.fixture(scope="module")
def sample_trace():
    trace, _ = ingest_azure_vm_trace(
        bundled_sample_path(), name="azure-sample"
    )
    return trace


@pytest.fixture(scope="module")
def report(sample_trace):
    return marginals_report(sample_trace)


class TestKsDistance:
    def test_identical_samples(self):
        xs = np.arange(100.0)
        assert ks_distance(xs, xs) == 0.0

    def test_disjoint_samples(self):
        assert ks_distance([1.0, 2.0], [10.0, 11.0]) == 1.0

    def test_known_value(self):
        # ECDFs of {0,1} vs {0.5, 1.5} differ by exactly 0.5.
        assert ks_distance([0.0, 1.0], [0.5, 1.5]) == pytest.approx(0.5)

    def test_empty_sample(self):
        assert ks_distance([], [1.0]) == 1.0


class TestReportSchema:
    def test_validates_clean(self, report):
        assert validate_marginals_report(report) == []

    def test_schema_tag(self, report):
        assert report["schema"] == MARGINALS_SCHEMA

    def test_all_metrics_present(self, report):
        assert set(report["metrics"]) == set(METRICS)

    def test_json_round_trip_validates(self, report):
        assert validate_marginals_report(
            json.loads(json.dumps(report))
        ) == []

    def test_validator_catches_damage(self, report):
        broken = json.loads(json.dumps(report))
        broken["schema"] = "bogus/9"
        del broken["metrics"]["core_size"]
        broken["metrics"]["memory_gb"]["ks_distance"] = 1.5
        problems = validate_marginals_report(broken)
        assert len(problems) == 3

    def test_validator_rejects_non_dict(self):
        assert validate_marginals_report([]) == ["report is not a dict"]


class TestPinnedDistances:
    @pytest.mark.parametrize("metric", sorted(GOLDEN_KS))
    def test_ks_distance_pinned(self, report, metric):
        assert report["metrics"][metric]["ks_distance"] == pytest.approx(
            GOLDEN_KS[metric], abs=5e-4
        )

    def test_trace_identity_pinned(self, report, sample_trace):
        assert report["trace"]["digest"] == sample_trace.digest()
        assert report["trace"]["n_vms"] == 420
        assert report["trace"]["start_hours"] == pytest.approx(5.5)


class TestDeterminism:
    def test_repeated_runs_byte_identical(self, sample_trace):
        a = marginals_report(sample_trace)
        b = marginals_report(sample_trace)
        assert json.dumps(a, sort_keys=True) == json.dumps(
            b, sort_keys=True
        )

    def test_independent_of_jobs_setting(self, sample_trace, report):
        runner.set_default_jobs(2)
        try:
            jobs2 = marginals_report(sample_trace)
        finally:
            runner.set_default_jobs(None)
        assert json.dumps(jobs2, sort_keys=True) == json.dumps(
            report, sort_keys=True
        )

    def test_no_timestamps_in_report(self, report):
        flat = json.dumps(report).lower()
        for needle in ("timestamp", "time\":", "date"):
            assert needle not in flat


class TestFittedParams:
    def test_fit_constructs_valid_params(self, sample_trace):
        fitted = fit_trace_params(sample_trace)
        assert isinstance(fitted, TraceParams)
        assert sum(fitted.core_size_weights) == pytest.approx(1.0)
        assert sum(fitted.memory_per_core_weights) == pytest.approx(1.0)
        assert sum(fitted.generation_mix) == pytest.approx(1.0)

    def test_fit_matches_window(self, sample_trace):
        fitted = fit_trace_params(sample_trace)
        assert fitted.duration_days * 24 == pytest.approx(
            sample_trace.duration_hours
        )

    def test_fitted_params_generate(self, sample_trace):
        fitted = fit_trace_params(sample_trace)
        twin = generate_trace(seed=11, params=fitted, name="twin")
        assert twin.columns.n > 0
        # The twin's core shapes stay inside the fitted support.
        assert set(np.unique(twin.columns.cores)) <= set(fitted.core_sizes)

    def test_fit_on_synthetic_recovers_mixes(self):
        params = TraceParams(duration_days=4.0, mean_concurrent_vms=300)
        trace = generate_trace(seed=2, params=params)
        fitted = fit_trace_params(trace)
        # Weight recovery is statistical, not exact: within a few points.
        for value, weight in zip(params.core_sizes, params.core_size_weights):
            if value in fitted.core_sizes:
                got = fitted.core_size_weights[
                    fitted.core_sizes.index(value)
                ]
                assert got == pytest.approx(weight, abs=0.05)

    def test_trace_params_fit_delegates(self, sample_trace):
        assert TraceParams.fit(sample_trace) == fit_trace_params(
            sample_trace
        )

    def test_empty_trace_rejected(self):
        from repro.allocation.columnar import ColumnarTrace
        from repro.allocation.traces import VmTrace

        empty = VmTrace(
            name="empty",
            params=TraceParams(),
            columns=ColumnarTrace.from_vms(()),
        )
        with pytest.raises(ValueError, match="empty trace"):
            fit_trace_params(empty)
