"""Ablation study tests."""

import pytest

from repro.analysis.ablations import (
    adoption_rule_ablation,
    buffer_policy_ablation,
    cxl_fraction_sweep,
    fip_sweep,
    placement_policy_ablation,
)
from repro.allocation.scheduler import BestFitScheduler
from repro.core.errors import ConfigError


class TestPlacementAblation:
    @pytest.fixture(scope="class")
    def results(self, small_trace):
        return {
            r.policy: r for r in placement_policy_ablation(small_trace)
        }

    def test_three_policies(self, results):
        assert set(results) == {"best-fit", "first-fit", "worst-fit"}

    def test_best_fit_never_worse_than_worst_fit(self, results):
        assert (
            results["best-fit"].servers_needed
            <= results["worst-fit"].servers_needed
        )

    def test_density_ordering(self, results):
        assert (
            results["best-fit"].mean_core_density
            >= results["worst-fit"].mean_core_density
        )

    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigError):
            BestFitScheduler("random-fit")


class TestFipSweep:
    def test_paper_point(self):
        results = {r.effectiveness: r for r in fip_sweep()}
        assert results[0.75].baseline_repair_rate == pytest.approx(3.0)
        assert results[0.75].greensku_repair_rate == pytest.approx(3.6)

    def test_overhead_shrinks_with_effectiveness(self):
        results = fip_sweep()
        overheads = [r.greensku_overhead for r in results]
        assert overheads == sorted(overheads, reverse=True)

    def test_perfect_fip_equalizes(self):
        perfect = fip_sweep(effectiveness_levels=[1.0])[0]
        assert perfect.greensku_overhead == pytest.approx(0.0)


class TestAdoptionAblation:
    @pytest.fixture(scope="class")
    def results(self, small_trace):
        return {r.rule: r for r in adoption_rule_ablation(small_trace)}

    def test_three_rules(self, results):
        assert set(results) == {"carbon-aware", "performance-only", "always"}

    def test_carbon_aware_positive(self, results):
        assert results["carbon-aware"].cluster_savings > 0

    def test_always_uses_most_greens(self, results):
        assert (
            results["always"].green_servers
            >= results["carbon-aware"].green_servers
        )

    def test_carbon_aware_at_least_performance_only(self, results):
        # Dropping carbon-negative adopters can only help savings.
        assert (
            results["carbon-aware"].cluster_savings
            >= results["performance-only"].cluster_savings - 1e-9
        )


class TestBufferAblation:
    def test_single_buffer_costs_more(self):
        single, dual = buffer_policy_ablation(20, 20)
        assert single.buffer_carbon_kg >= dual.buffer_carbon_kg

    def test_single_buffer_is_baseline_only(self):
        single, _dual = buffer_policy_ablation(20, 20)
        assert single.green_buffer_servers == 0


class TestCxlSweep:
    def test_savings_grow_with_reuse(self):
        results = cxl_fraction_sweep()
        savings = [r.savings_vs_baseline for r in results]
        assert savings == sorted(savings)

    def test_greensku_cxl_point(self):
        # 8 DIMMs = 25% of memory behind CXL, matching GreenSKU-CXL.
        point = next(r for r in cxl_fraction_sweep() if r.cxl_dimms == 8)
        assert point.cxl_fraction == pytest.approx(0.25)

    def test_odd_dimm_count_rejected(self):
        with pytest.raises(ConfigError):
            cxl_fraction_sweep(dimm_counts=[3])
