"""Lifetime-extension study tests."""

import pytest

from repro.analysis.lifetime import LifetimeStudy, lifetime_study
from repro.core.errors import ConfigError


@pytest.fixture(scope="module")
def study():
    return lifetime_study()


class TestSweep:
    def test_embodied_rate_decreases_with_lifetime(self, study):
        rates = [p.embodied_per_core_year for p in study.points]
        assert rates == sorted(rates, reverse=True)

    def test_operational_rate_grows_past_default(self, study):
        by_l = {p.lifetime_years: p for p in study.points}
        assert (
            by_l[12.0].operational_per_core_year
            > by_l[6.0].operational_per_core_year
        )

    def test_maintenance_grows_past_wearout(self, study):
        by_l = {p.lifetime_years: p for p in study.points}
        assert (
            by_l[14.0].maintenance_overhead_per_core_year
            > by_l[6.0].maintenance_overhead_per_core_year
        )

    def test_optimum_is_interior(self, study):
        # Too short wastes embodied carbon; too long pays stagnation and
        # wear-out.  The optimum sits strictly inside the sweep.
        lifetimes = [p.lifetime_years for p in study.points]
        assert lifetimes[0] < study.optimal_lifetime_years < lifetimes[-1]

    def test_extension_beyond_six_years_saves(self, study):
        # Consistent with the paper's lifetime-extension literature: some
        # extension past 6 years is carbon-positive even with costs.
        assert study.optimal_lifetime_years > 6.0
        assert study.savings_vs(6.0) > 0

    def test_free_extension_assumption_overstates(self):
        # With the costs disabled (the paper's simplifying assumption),
        # longer is always better — showing what the assumption hides.
        free = lifetime_study(
            wearout_afr_growth_per_year=0.0,
            efficiency_progress_per_year=0.0,
        )
        totals = [p.total_per_core_year for p in free.points]
        assert totals == sorted(totals, reverse=True)
        costed = lifetime_study()
        assert (
            costed.optimal_lifetime_years
            < free.points[-1].lifetime_years
        )


class TestValidation:
    def test_empty_sweep_rejected(self):
        with pytest.raises(ConfigError):
            lifetime_study(lifetimes=())

    def test_negative_lifetime_rejected(self):
        with pytest.raises(ConfigError):
            lifetime_study(lifetimes=(-1.0,))

    def test_missing_base_rejected(self, study):
        with pytest.raises(ConfigError):
            study.savings_vs(6.5)
