"""Second-generation GreenSKU option tests."""

import pytest

from repro.analysis.second_gen import (
    greensku_gen2_full,
    greensku_gen2_lpddr,
    greensku_gen2_nic,
    lpddr_dimm,
    second_generation_study,
)
from repro.hardware import catalog
from repro.hardware.components import Category


class TestLpddr:
    def test_power_and_embodied_ratios(self):
        lp = lpddr_dimm()
        assert lp.tdp_watts == pytest.approx(
            0.6 * catalog.DDR5_64GB.tdp_watts
        )
        assert lp.embodied_kg == pytest.approx(
            1.15 * catalog.DDR5_64GB.embodied_kg
        )

    def test_capacity_unchanged(self):
        assert lpddr_dimm().capacity_gb == 64


class TestSkuVariants:
    def test_nic_variant_reuses_nic(self):
        sku = greensku_gen2_nic()
        nics = [s for s, _n in sku.iter_parts() if s.category == Category.NIC]
        assert all(nic.reused for nic in nics)

    def test_lpddr_variant_keeps_cxl_dimms(self):
        sku = greensku_gen2_lpddr()
        assert sku.cxl_memory_gb == 256  # reused DDR4 untouched

    def test_full_variant_same_shape(self):
        sku = greensku_gen2_full()
        assert sku.cores == 128
        assert sku.memory_gb == 1024


class TestStudy:
    @pytest.fixture(scope="class")
    def options(self):
        return {o.name: o for o in second_generation_study()}

    def test_four_options(self, options):
        assert len(options) == 4

    def test_every_option_beats_baseline(self, options):
        for option in options.values():
            assert option.savings_vs_baseline > 0.2

    def test_incremental_returns_low_today(self, options):
        # The paper's point: NIC reuse and LPDDR "yield low returns today"
        # — single-digit increments on top of GreenSKU-Full.
        for name, option in options.items():
            if name == "GreenSKU-Full":
                continue
            assert (
                0
                < option.incremental_savings_vs_gen1_greensku
                < 0.10
            ), name

    def test_combined_is_best(self, options):
        assert (
            options["GreenSKU-Gen2-Full"].total_per_core
            == min(o.total_per_core for o in options.values())
        )

    def test_nic_increment_smaller_than_lpddr(self, options):
        # One NIC's embodied carbon vs every local DIMM's power.
        assert (
            options["GreenSKU-Gen2-NIC"].incremental_savings_vs_gen1_greensku
            < options[
                "GreenSKU-Gen2-LPDDR"
            ].incremental_savings_vs_gen1_greensku
        )
