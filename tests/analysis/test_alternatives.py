"""Section VII-B alternative-strategy equivalence tests."""

import pytest

from repro.analysis.alternatives import (
    efficiency_improvement_equivalent,
    equivalence_report,
    lifetime_extension_equivalent,
    operational_share,
    renewables_increase_equivalent,
)
from repro.carbon.intensity import EnergyMix
from repro.carbon.model import CarbonModel
from repro.core.errors import ConfigError


class TestOperationalShare:
    def test_share_in_unit_interval(self):
        assert 0 < operational_share() < 1

    def test_cleaner_grid_lower_share(self):
        dirty = operational_share(CarbonModel().at_intensity(0.3))
        clean = operational_share(CarbonModel().at_intensity(0.03))
        assert clean < dirty


class TestEfficiency:
    def test_target_over_share(self):
        share = operational_share()
        assert efficiency_improvement_equivalent(0.10) == pytest.approx(
            0.10 / share
        )

    def test_paper_scale(self):
        # Paper: ~28% component efficiency matches GreenSKU-Full's
        # performance-adjusted savings (15%).
        e = efficiency_improvement_equivalent(0.15)
        assert 0.2 < e < 0.4

    def test_target_beyond_operational_rejected(self):
        with pytest.raises(ConfigError):
            efficiency_improvement_equivalent(0.99)

    def test_zero_target(self):
        assert efficiency_improvement_equivalent(0.0) == 0.0


class TestLifetime:
    def test_extension_direction(self):
        # More savings -> longer required lifetimes.
        l_small = lifetime_extension_equivalent(0.05)
        l_big = lifetime_extension_equivalent(0.15)
        assert 6 < l_small < l_big

    def test_paper_scale(self):
        # Paper: matching the savings needs lifetimes well past 6 years
        # (13 with internal data).
        years = lifetime_extension_equivalent(0.15)
        assert 8 < years < 20

    def test_zero_target_is_base_lifetime(self):
        assert lifetime_extension_equivalent(0.0) == pytest.approx(6.0)

    def test_unreachable_target_rejected(self):
        with pytest.raises(ConfigError):
            lifetime_extension_equivalent(0.9)


class TestRenewables:
    def test_increase_positive(self):
        mix = EnergyMix(0.6)
        model = CarbonModel().at_intensity(mix.effective_ci)
        delta = renewables_increase_equivalent(0.05, mix=mix, model=model)
        assert delta > 0

    def test_more_savings_more_renewables(self):
        mix = EnergyMix(0.6)
        model = CarbonModel().at_intensity(mix.effective_ci)
        d1 = renewables_increase_equivalent(0.03, mix=mix, model=model)
        d2 = renewables_increase_equivalent(0.08, mix=mix, model=model)
        assert d2 > d1

    def test_unreachable_target_rejected(self):
        mix = EnergyMix(0.6)
        model = CarbonModel().at_intensity(mix.effective_ci)
        with pytest.raises(ConfigError):
            renewables_increase_equivalent(0.95, mix=mix, model=model)

    def test_invalid_target(self):
        with pytest.raises(ConfigError):
            renewables_increase_equivalent(1.2)


class TestReport:
    def test_report_consistency(self):
        report = equivalence_report(0.07)
        assert report.target_savings == 0.07
        assert report.renewables_increase > 0
        assert report.efficiency_improvement > 0
        assert report.lifetime_years > 6
