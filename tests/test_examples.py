"""Smoke tests for the runnable examples (the fast ones, in-process).

The heavier examples (region_planning, capacity_planning,
design_space_exploration) exercise the same code paths as the benchmark
suite and run standalone; here we verify the quick ones end to end.
"""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"

#: Examples fast enough for the unit-test suite.
FAST_EXAMPLES = (
    "quickstart",
    "slo_scaling_study",
    "runtime_systems",
    "fleet_transition",
    "custom_hardware",
)


def load_example(name: str):
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


class TestExamples:
    @pytest.mark.parametrize("name", FAST_EXAMPLES)
    def test_example_runs(self, name, capsys):
        module = load_example(name)
        module.main()
        out = capsys.readouterr().out
        assert len(out) > 100  # produced a real report

    def test_quickstart_mentions_savings(self, capsys):
        load_example("quickstart").main()
        out = capsys.readouterr().out
        assert "cluster savings" in out
        assert "GreenSKU-Full" in out

    def test_all_examples_have_docstrings_and_main(self):
        for path in sorted(EXAMPLES_DIR.glob("*.py")):
            source = path.read_text()
            assert source.lstrip().startswith('"""'), path.name
            assert "def main()" in source, path.name
