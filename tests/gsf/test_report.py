"""Evaluation report tests."""

import pytest

from repro.core.errors import ConfigError
from repro.gsf.report import evaluation_markdown
from repro.hardware.sku import greensku_full


@pytest.fixture(scope="module")
def evaluation(gsf, small_trace):
    return gsf.evaluate(greensku_full(), small_trace)


class TestMarkdownReport:
    def test_contains_headline_sections(self, evaluation):
        text = evaluation_markdown(evaluation)
        assert "# GSF evaluation: GreenSKU-Full" in text
        assert "## Savings" in text
        assert "## Deployment plan" in text
        assert "## Assumptions" in text

    def test_savings_chain_present(self, evaluation):
        text = evaluation_markdown(evaluation)
        assert "per-core" in text
        assert "net data-center" in text

    def test_adoption_section_lists_silo(self, evaluation, gsf):
        adoption = gsf.adoption_model(greensku_full())
        text = evaluation_markdown(evaluation, adoption=adoption)
        assert "Silo" in text
        assert "cannot meet SLO" in text

    def test_rejected_scaled_apps_explained(self, evaluation, gsf):
        adoption = gsf.adoption_model(greensku_full())
        text = evaluation_markdown(evaluation, adoption=adoption)
        assert "scaled carbon exceeds baseline" in text

    def test_invalid_compute_share(self, evaluation):
        with pytest.raises(ConfigError):
            evaluation_markdown(evaluation, compute_share=0.0)

    def test_counts_match_sizing(self, evaluation):
        text = evaluation_markdown(evaluation)
        assert str(evaluation.sizing.baseline_only_servers) in text
        assert str(evaluation.sizing.mixed_green_servers) in text
