"""Cluster-sizing search tests."""

import collections

import pytest

from repro.allocation.cluster import ClusterSpec, adopt_nothing, simulate
from repro.allocation.traces import TraceParams, VmTrace
from repro.allocation.vm import VmRequest
from repro.gsf import sizing as sizing_module
from repro.gsf.sizing import (
    ClusterSizing,
    SizingStats,
    right_size,
    size_mixed_cluster,
)
from repro.hardware.sku import baseline_gen3, greensku_full


def make_vm(vm_id, cores=8, lifetime=24.0, app="Redis", gen=3):
    return VmRequest(
        vm_id=vm_id,
        arrival_hours=0.0,
        lifetime_hours=lifetime,
        cores=cores,
        memory_gb=cores * 4.0,
        generation=gen,
        app_name=app,
    )


def trace_of(vms):
    return VmTrace(
        name="t", params=TraceParams(duration_days=1), vms=tuple(vms)
    )


class TestRightSize:
    def test_empty_trace_needs_no_servers(self):
        assert right_size(trace_of([]), baseline_gen3()) == 0

    def test_exact_fit(self):
        # 10 concurrent 8-core VMs = 80 cores = exactly one server.
        trace = trace_of([make_vm(i) for i in range(10)])
        assert right_size(trace, baseline_gen3()) == 1

    def test_one_more_vm_needs_second_server(self):
        trace = trace_of([make_vm(i) for i in range(11)])
        assert right_size(trace, baseline_gen3()) == 2

    def test_result_is_feasible(self, small_trace):
        n = right_size(small_trace, baseline_gen3())
        out = simulate(
            small_trace, ClusterSpec.of((baseline_gen3(), n)),
            adoption=adopt_nothing,
        )
        assert out.feasible

    def test_result_is_minimal(self, small_trace):
        n = right_size(small_trace, baseline_gen3())
        assert n > 0
        out = simulate(
            small_trace, ClusterSpec.of((baseline_gen3(), n - 1)),
            adoption=adopt_nothing,
        )
        assert not out.feasible

    def test_greensku_needs_fewer_servers(self, small_trace):
        # 128 cores per server vs 80 (unscaled workload).  Full-node VMs
        # require baseline servers, so compare on the shared remainder.
        shared = trace_of(
            [vm for vm in small_trace.vms if not vm.full_node]
        )
        n_base = right_size(shared, baseline_gen3())
        # A green-only cluster needs a policy that routes VMs to greens.
        n_green = right_size(
            shared, greensku_full(), adoption=lambda app, gen: 1.0
        )
        assert n_green <= n_base


class TestSearchEfficiency:
    """The memoized searches never simulate a configuration twice."""

    @pytest.fixture()
    def simulate_counter(self, monkeypatch):
        """Counts replay invocations per (trace, cluster) config.

        Instruments both probe entry points — ``simulate`` (the
        reference engine's path) and ``replay_on_engine`` (the indexed
        probe-reuse path) — so the no-resimulation guarantee is checked
        under whichever engine is active.
        """
        calls = collections.Counter()
        real_simulate = sizing_module.simulate
        real_replay = sizing_module.replay_on_engine

        def key_of(trace, cluster):
            return (
                trace.name,
                tuple((sku.name, count) for sku, count in cluster.skus),
            )

        def counting_simulate(trace, cluster, **kwargs):
            calls[key_of(trace, cluster)] += 1
            return real_simulate(trace, cluster, **kwargs)

        def counting_replay(trace, cluster, engine, **kwargs):
            calls[key_of(trace, cluster)] += 1
            return real_replay(trace, cluster, engine, **kwargs)

        monkeypatch.setattr(sizing_module, "simulate", counting_simulate)
        monkeypatch.setattr(sizing_module, "replay_on_engine", counting_replay)
        return calls

    def test_right_size_never_resimulates(
        self, small_trace, simulate_counter
    ):
        # In particular the downward-verification pass must reuse the
        # bisection's final infeasible probe instead of re-running it.
        right_size(small_trace, baseline_gen3())
        assert simulate_counter and max(simulate_counter.values()) == 1

    def test_mixed_sizing_never_resimulates(
        self, small_trace, gsf, full_sku, simulate_counter
    ):
        policy = gsf.adoption_model(full_sku).policy()
        stats = SizingStats()
        size_mixed_cluster(
            small_trace, baseline_gen3(), full_sku, policy, stats=stats
        )
        assert max(simulate_counter.values()) == 1
        # The memo must actually have absorbed repeat probes (the trim
        # loops re-check configurations), and every simulated config is
        # accounted for by the counters.
        assert stats.memo_hits > 0
        assert stats.simulate_calls >= sum(simulate_counter.values())

    def test_right_size_clamps_to_lower(self, small_trace):
        unconstrained = right_size(small_trace, baseline_gen3())
        constrained = right_size(
            small_trace, baseline_gen3(), lower=unconstrained + 3
        )
        assert constrained == unconstrained + 3

    def test_hint_does_not_change_result(self, small_trace):
        reference = right_size(small_trace, baseline_gen3())
        for hint in (1, reference, reference + 10, 4 * reference):
            assert (
                right_size(small_trace, baseline_gen3(), hint=hint)
                == reference
            )

    def test_empty_trace_ignores_lower(self):
        assert right_size(trace_of([]), baseline_gen3(), lower=5) == 0

    def test_stats_accumulate_across_searches(self, small_trace):
        stats = SizingStats()
        right_size(small_trace, baseline_gen3(), stats=stats)
        first = stats.simulate_calls
        assert first > 0
        right_size(
            small_trace,
            greensku_full(),
            adoption=lambda app, gen: 1.0,
            stats=stats,
        )
        assert stats.simulate_calls > first
        assert stats.probes == stats.simulate_calls + stats.memo_hits


class TestMixedSizing:
    def adoption_all(self, app, gen):
        return 1.0

    def adoption_none(self, app, gen):
        return None

    def test_all_adopt_empties_baseline(self, small_trace):
        sizing = size_mixed_cluster(
            small_trace, baseline_gen3(), greensku_full(), self.adoption_all
        )
        # Full-node VMs may pin a few baseline servers; everything else
        # moves to GreenSKUs.
        assert sizing.mixed_green_servers > 0
        assert sizing.mixed_baseline_servers <= sizing.baseline_only_servers

    def test_none_adopt_keeps_baseline_only(self, small_trace):
        sizing = size_mixed_cluster(
            small_trace, baseline_gen3(), greensku_full(), self.adoption_none
        )
        assert sizing.mixed_green_servers == 0
        assert (
            sizing.mixed_baseline_servers == sizing.baseline_only_servers
        )

    def test_mixed_cluster_is_feasible(self, small_trace, gsf, full_sku):
        policy = gsf.adoption_model(full_sku).policy()
        sizing = size_mixed_cluster(
            small_trace, baseline_gen3(), full_sku, policy
        )
        spec = ClusterSpec.of(
            (baseline_gen3(), sizing.mixed_baseline_servers),
            (full_sku, sizing.mixed_green_servers),
        )
        out = simulate(small_trace, spec, adoption=policy)
        assert out.feasible

    def test_oos_overheads_carried(self, small_trace):
        sizing = size_mixed_cluster(
            small_trace,
            baseline_gen3(),
            greensku_full(),
            self.adoption_none,
            oos_overhead_baseline=0.01,
            oos_overhead_green=0.02,
        )
        base, green = sizing.deployed_mixed
        assert base == pytest.approx(sizing.mixed_baseline_servers * 1.01)
        assert sizing.deployed_baseline_only == pytest.approx(
            sizing.baseline_only_servers * 1.01
        )


class TestClusterSizingRecord:
    def test_totals(self):
        sizing = ClusterSizing(
            baseline_only_servers=10,
            mixed_baseline_servers=4,
            mixed_green_servers=5,
        )
        assert sizing.mixed_total == 9
        assert sizing.deployed_baseline_only == 10
