"""Growth buffer tests."""

import pytest

from repro.core.errors import ConfigError
from repro.gsf.buffer import (
    BufferPlan,
    baseline_only_buffer,
    proportional_dual_buffer,
)


class TestBaselineOnlyBuffer:
    def test_sizing(self):
        # 15% of 800 cores = 120 cores = 2 baseline servers (ceil 1.5).
        plan = baseline_only_buffer(800, 80, buffer_fraction=0.15)
        assert plan.baseline_buffer_servers == 2
        assert plan.green_buffer_servers == 0

    def test_ceil_behaviour(self):
        plan = baseline_only_buffer(81, 80, buffer_fraction=1e-6)
        assert plan.baseline_buffer_servers == 1

    def test_zero_capacity(self):
        assert baseline_only_buffer(0, 80).total == 0

    def test_invalid_fraction(self):
        with pytest.raises(ConfigError):
            baseline_only_buffer(100, 80, buffer_fraction=1.0)

    def test_invalid_cores_per_server(self):
        with pytest.raises(ConfigError):
            baseline_only_buffer(100, 0)

    def test_negative_capacity(self):
        with pytest.raises(ConfigError):
            baseline_only_buffer(-1, 80)


class TestDualBuffer:
    def test_per_pool_sizing(self):
        plan = proportional_dual_buffer(800, 1280, 80, 128,
                                        buffer_fraction=0.10)
        assert plan.baseline_buffer_servers == 1
        assert plan.green_buffer_servers == 1

    def test_total(self):
        plan = BufferPlan(baseline_buffer_servers=3, green_buffer_servers=2)
        assert plan.total == 5

    def test_dual_buffer_validation(self):
        with pytest.raises(ConfigError):
            proportional_dual_buffer(-1, 0, 80, 128)


class TestPolicyComparison:
    def test_single_buffer_uses_more_baseline(self):
        # The paper's workaround keeps the whole buffer on (carbon-
        # inefficient) baseline SKUs.
        single = baseline_only_buffer(2080, 80, 0.15)
        dual = proportional_dual_buffer(800, 1280, 80, 128, 0.15)
        assert single.baseline_buffer_servers > dual.baseline_buffer_servers
        assert single.green_buffer_servers == 0
