"""Adoption component tests."""

import math

import pytest

from repro.carbon.model import CarbonModel
from repro.core.errors import ConfigError
from repro.gsf.adoption import AdoptionModel, default_baseline_skus
from repro.hardware.sku import greensku_efficient, greensku_full


@pytest.fixture(scope="module")
def full_adoption(carbon_model):
    return AdoptionModel(carbon_model, greensku_full())


class TestDecisions:
    def test_factor_one_apps_adopt(self, full_adoption):
        # Factor-1 apps always save carbon on the (cheaper-per-core)
        # GreenSKU.
        for name in ("Redis", "Shore", "Img-DNN", "Caddy", "Envoy"):
            assert full_adoption.decide(name, 3).adopt, name

    def test_silo_never_adopts(self, full_adoption):
        for gen in (1, 2, 3):
            decision = full_adoption.decide("Silo", gen)
            assert not decision.adopt
            assert math.isinf(decision.scaling_factor)

    def test_masstree_adopts_only_on_old_gens(self, full_adoption):
        assert full_adoption.decide("Masstree", 1).adopt
        assert full_adoption.decide("Masstree", 2).adopt
        assert not full_adoption.decide("Masstree", 3).adopt

    def test_adoption_compares_carbon(self, full_adoption):
        decision = full_adoption.decide("Moses", 3)  # factor 1.25
        assert decision.green_carbon_kg == pytest.approx(
            1.25 * 8 * full_adoption._green_per_core
        )
        assert decision.adopt == (
            decision.green_carbon_kg < decision.baseline_carbon_kg
        )

    def test_savings_fraction_sign(self, full_adoption):
        adopted = full_adoption.decide("Redis", 3)
        assert adopted.savings_fraction > 0
        rejected = full_adoption.decide("Silo", 3)
        assert rejected.savings_fraction == -math.inf

    def test_decisions_cover_all_apps_and_gens(self, full_adoption):
        decisions = full_adoption.decisions()
        assert len(decisions) == 20 * 3

    def test_unknown_app_rejected(self, full_adoption):
        with pytest.raises(ConfigError):
            full_adoption.decide("Memcached", 3)

    def test_unknown_generation_rejected(self, full_adoption):
        with pytest.raises(ConfigError):
            full_adoption.decide("Redis", 5)

    def test_decisions_cached(self, full_adoption):
        a = full_adoption.decide("Redis", 3)
        b = full_adoption.decide("Redis", 3)
        assert a is b


class TestPolicy:
    def test_policy_returns_factor_for_adopters(self, full_adoption):
        policy = full_adoption.policy()
        assert policy("Redis", 3) == 1.0
        assert policy("Moses", 3) == 1.25

    def test_policy_none_for_non_adopters(self, full_adoption):
        policy = full_adoption.policy()
        assert policy("Silo", 3) is None


class TestAdoptedShare:
    def test_full_share_in_expected_band(self, full_adoption):
        # Most of the fleet adopts GreenSKU-Full against Gen3.
        share = full_adoption.adopted_core_hour_share()
        assert 0.6 < share < 0.9

    def test_efficient_adopts_less_than_full(self, carbon_model):
        # GreenSKU-Efficient's smaller per-core savings (15% open data)
        # reject the factor-1.25 applications.
        efficient = AdoptionModel(carbon_model, greensku_efficient())
        full = AdoptionModel(carbon_model, greensku_full())
        assert (
            efficient.adopted_core_hour_share()
            < full.adopted_core_hour_share()
        )


class TestIntensityDependence:
    def test_zero_ci_expands_adoption(self):
        # At zero carbon intensity only embodied matters; GreenSKU-Full's
        # 38% embodied savings admit even factor-1.5 applications.
        clean = AdoptionModel(CarbonModel().at_intensity(0.0), greensku_full())
        assert clean.decide("Xapian", 3).adopt  # factor 1.5

    def test_default_ci_rejects_xapian(self, full_adoption):
        # At CI=0.1, 1.5x the cores costs more carbon than it saves.
        assert not full_adoption.decide("Xapian", 3).adopt

    def test_default_baselines(self):
        baselines = default_baseline_skus()
        assert set(baselines) == {1, 2, 3}
