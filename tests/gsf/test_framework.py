"""End-to-end GSF framework tests."""

import pytest

from repro.gsf.framework import Gsf, GsfConfig
from repro.hardware.datacenter import DataCenterConfig
from repro.hardware.sku import (
    all_greenskus,
    greensku_efficient,
    greensku_full,
)


@pytest.fixture(scope="module")
def evaluation(gsf, full_sku, medium_trace):
    return gsf.evaluate(full_sku, medium_trace)


class TestEvaluation:
    def test_positive_cluster_savings(self, evaluation):
        # Fig. 11: GreenSKU clusters save carbon vs all-baseline clusters.
        assert evaluation.cluster_savings > 0

    def test_dc_savings_scaled_by_compute_share(self, gsf, evaluation):
        assert gsf.dc_savings(evaluation) == pytest.approx(
            evaluation.cluster_savings * 0.5
        )

    def test_mixed_deploys_greens(self, evaluation):
        assert evaluation.sizing.mixed_green_servers > 0

    def test_reference_is_all_baseline(self, evaluation):
        assert evaluation.reference.green_servers == 0
        assert evaluation.reference.green_kg == 0

    def test_emissions_consistent_with_servers(self, evaluation):
        ref = evaluation.reference
        per_server = evaluation.baseline_assessment.per_server_total_kg
        assert ref.baseline_kg == pytest.approx(
            ref.baseline_servers * per_server
        )

    def test_buffer_is_baseline_only(self, evaluation):
        assert evaluation.buffer.green_buffer_servers == 0
        assert evaluation.buffer.baseline_buffer_servers > 0

    def test_oos_overheads_positive(self, evaluation):
        assert evaluation.sizing.oos_overhead_baseline > 0
        assert evaluation.sizing.oos_overhead_green > 0
        # GreenSKU-Full has a higher repair rate (3.6 vs 3.0).
        assert (
            evaluation.sizing.oos_overhead_green
            > evaluation.sizing.oos_overhead_baseline
        )

    def test_adopted_share_reported(self, evaluation):
        assert 0.5 < evaluation.adopted_core_hour_share < 1.0

    def test_sizing_reuse(self, gsf, full_sku, medium_trace, evaluation):
        again = gsf.evaluate(full_sku, medium_trace,
                             sizing=evaluation.sizing)
        assert again.cluster_savings == pytest.approx(
            evaluation.cluster_savings
        )


class TestMaintenanceHook:
    def test_oos_fraction_matches_reliability_model(self, gsf, full_sku):
        from repro.reliability.afr import server_afr
        from repro.reliability.maintenance import out_of_service_fraction

        expected = out_of_service_fraction(
            server_afr(full_sku).repair_rate(gsf.config.fip_effectiveness),
            gsf.config.repair_time_days,
        )
        assert gsf.oos_fraction(full_sku) == pytest.approx(expected)


class TestIntensitySweep:
    @pytest.fixture(scope="class")
    def sweep(self, gsf, medium_trace):
        return gsf.intensity_sweep(
            medium_trace, [0.0, 0.1, 0.3], greenskus=all_greenskus()
        )

    def test_point_per_intensity(self, sweep):
        assert [p.carbon_intensity for p in sweep] == [0.0, 0.1, 0.3]

    def test_all_skus_present(self, sweep):
        for point in sweep:
            assert set(point.savings_by_sku) == {
                "GreenSKU-Efficient",
                "GreenSKU-CXL",
                "GreenSKU-Full",
            }

    def test_full_wins_on_clean_grid(self, sweep):
        # Fig. 11: reuse-heavy designs win where embodied dominates.
        assert sweep[0].best_sku()[0] == "GreenSKU-Full"

    def test_full_advantage_shrinks_with_ci(self, sweep):
        full = [p.savings_by_sku["GreenSKU-Full"] for p in sweep]
        assert full[0] > full[-1]

    def test_efficient_catches_up_at_high_ci(self, sweep):
        gap_clean = (
            sweep[0].savings_by_sku["GreenSKU-Full"]
            - sweep[0].savings_by_sku["GreenSKU-Efficient"]
        )
        gap_dirty = (
            sweep[-1].savings_by_sku["GreenSKU-Full"]
            - sweep[-1].savings_by_sku["GreenSKU-Efficient"]
        )
        assert gap_dirty < gap_clean


class TestConfigPlumbing:
    def test_at_intensity_copies_config(self, gsf):
        other = gsf.at_intensity(0.3)
        assert other.config.datacenter.carbon_intensity_kg_per_kwh == 0.3
        assert gsf.config.datacenter.carbon_intensity_kg_per_kwh == 0.1

    def test_custom_config(self):
        config = GsfConfig(
            datacenter=DataCenterConfig(pue=1.3), buffer_fraction=0.2
        )
        gsf = Gsf(config)
        assert gsf.carbon_model.datacenter.pue == 1.3
