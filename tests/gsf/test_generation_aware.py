"""Generation-aware sizing and evaluation tests."""

import pytest

from repro.allocation.cluster import ClusterSpec, adopt_nothing, simulate
from repro.allocation.traces import TraceParams, generate_trace
from repro.gsf.framework import Gsf
from repro.gsf.sizing import size_generation_aware
from repro.hardware.sku import (
    baseline_gen1,
    baseline_gen2,
    baseline_gen3,
    greensku_full,
)


@pytest.fixture(scope="module")
def trace():
    return generate_trace(
        seed=17, params=TraceParams(duration_days=5, mean_concurrent_vms=150)
    )


@pytest.fixture(scope="module")
def baselines():
    return {1: baseline_gen1(), 2: baseline_gen2(), 3: baseline_gen3()}


@pytest.fixture(scope="module")
def sizing(trace, baselines, gsf):
    policy = gsf.adoption_model(greensku_full()).policy()
    return size_generation_aware(trace, baselines, greensku_full(), policy)


class TestGenerationRouting:
    def test_vms_route_to_own_generation(self, trace, baselines):
        """In a multi-generation cluster, every placement lands on the
        VM's own generation."""
        spec = ClusterSpec.of(
            (baselines[1], 10), (baselines[2], 20), (baselines[3], 30)
        )
        outcome = simulate(trace, spec, adoption=adopt_nothing)
        assert outcome.feasible

    def test_single_generation_cluster_takes_everything(self, trace):
        """A Gen3-only cluster still hosts Gen1/Gen2 VMs (old images run
        under-clocked on new hardware, per the paper)."""
        spec = ClusterSpec.of((baseline_gen3(), 40))
        outcome = simulate(trace, spec, adoption=adopt_nothing)
        assert outcome.feasible


class TestGenerationAwareSizing:
    def test_reference_covers_all_generations(self, sizing, trace):
        generations = {vm.generation for vm in trace.vms}
        for gen in generations:
            assert sizing.reference_by_gen[gen] > 0

    def test_mixed_smaller_than_reference(self, sizing):
        assert (
            sizing.mixed_baseline_total + sizing.mixed_green_servers
            <= sizing.reference_total + sizing.mixed_green_servers
        )
        assert sizing.mixed_baseline_total < sizing.reference_total

    def test_mixed_cluster_feasible(self, sizing, trace, baselines, gsf):
        policy = gsf.adoption_model(greensku_full()).policy()
        pairs = [
            (baselines[gen], count)
            for gen, count in sizing.mixed_baselines_by_gen.items()
            if count > 0
        ]
        pairs.append((greensku_full(), sizing.mixed_green_servers))
        outcome = simulate(
            trace, ClusterSpec.of(*pairs), adoption=policy
        )
        assert outcome.feasible


class TestGenerationAwareEvaluation:
    def test_positive_savings(self, gsf, trace):
        ev = gsf.evaluate_generation_aware(greensku_full(), trace)
        assert ev.cluster_savings > 0

    def test_emissions_consistent(self, gsf, trace):
        ev = gsf.evaluate_generation_aware(greensku_full(), trace)
        assert ev.mixed_kg < ev.reference_kg
        assert ev.cluster_savings == pytest.approx(
            1 - ev.mixed_kg / ev.reference_kg
        )

    def test_comparable_to_default_mode(self, gsf, trace):
        """The two accounting modes agree within a few points — the
        Gen3-only reference is not a major distortion for this fleet."""
        aware = gsf.evaluate_generation_aware(greensku_full(), trace)
        default = gsf.evaluate(greensku_full(), trace)
        assert abs(
            aware.cluster_savings - default.cluster_savings
        ) < 0.08
