"""Property tests: invalidation soundness/minimality + kill/resume sweeps.

The properties the incremental driver's correctness rests on:

- **Soundness** — any changed input invalidates every artifact
  downstream of it (nothing stale survives).
- **Minimality** — with no changed inputs, nothing is invalidated and a
  repeat sweep recomputes nothing while leaving every catalog entry
  byte-identical.
- **Crash safety** — a sweep whose workers are killed mid-run and then
  resumed produces byte-identical catalog entries to an uninterrupted
  sweep.
"""

import dataclasses

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.catalog import ResultsCatalog, SweepSpec, run_sweep
from repro.core.faults import FaultPlan
from repro.core.provenance import (
    ProvenanceLog,
    ProvenanceRecord,
    invalidated,
)
from repro.core.resilience import (
    CheckpointJournal,
    ResiliencePolicy,
    RetryPolicy,
    activated,
)

# -- random layered DAGs of provenance records ---------------------------------

LEAVES = ("leaf/a", "leaf/b", "leaf/c", "leaf/d")


@st.composite
def provenance_graphs(draw):
    """A layered DAG: every node consumes leaves and/or earlier nodes.

    Edge digests are kept *fresh* (each artifact edge carries the
    upstream's current output digest), so invalidation comes only from
    the changed-leaf diff — the property under test.
    """
    n_nodes = draw(st.integers(min_value=1, max_value=8))
    latest = {}
    for i in range(n_nodes):
        node = f"node/{i}"
        inputs = {}
        names = draw(
            st.sets(st.sampled_from(LEAVES), min_size=1, max_size=3)
        )
        for leaf in names:
            inputs[leaf] = f"digest-{leaf}"
        if latest:
            uses = draw(
                st.sets(
                    st.sampled_from(sorted(latest)), min_size=0, max_size=2
                )
            )
            for upstream in uses:
                inputs[upstream] = latest[upstream].output_digest
        latest[node] = ProvenanceRecord.make(
            node, "task", inputs, f"out-{node}"
        )
    changed = draw(st.sets(st.sampled_from(LEAVES), max_size=len(LEAVES)))
    return latest, changed


def _downstream_closure(latest, changed_leaves):
    """The expected cone: consumers of changed leaves, then dependents."""
    invalid = {
        node
        for node, record in latest.items()
        if any(name in changed_leaves for name, _ in record.inputs)
    }
    grew = True
    while grew:
        grew = False
        for node, record in latest.items():
            if node in invalid:
                continue
            if any(name in invalid for name, _ in record.inputs):
                invalid.add(node)
                grew = True
    return invalid


class TestInvalidationProperties:
    @settings(deadline=None, max_examples=60)
    @given(data=provenance_graphs())
    def test_soundness_and_exactness(self, data):
        latest, changed = data
        current = {
            leaf: (
                f"digest-{leaf}-CHANGED" if leaf in changed
                else f"digest-{leaf}"
            )
            for leaf in LEAVES
        }
        report = invalidated(latest, current)
        expected = _downstream_closure(latest, changed)
        # Soundness: everything downstream of a change is in the cone.
        assert expected <= set(report.invalid)
        # Minimality: nothing else is (fresh edges, unchanged leaves).
        assert set(report.invalid) == expected
        used = {
            name
            for record in latest.values()
            for name, _ in record.inputs
            if name in LEAVES
        }
        assert set(report.changed_inputs) == (changed & used)

    @settings(deadline=None, max_examples=60)
    @given(data=provenance_graphs())
    def test_no_change_means_empty_cone(self, data):
        latest, _changed = data
        current = {leaf: f"digest-{leaf}" for leaf in LEAVES}
        report = invalidated(latest, current)
        assert report.invalid == ()
        assert report.changed_inputs == ()


# -- sweep-level minimality and crash safety -----------------------------------

TINY = SweepSpec(
    skus=("GreenSKU-Full",),
    adoption_rules=("carbon-aware", "always"),
    buffer_fractions=(0.15,),
    cxl_dimm_counts=(None,),
    backends=("synthetic",),
    seed=5,
    vms=30,
    days=0.5,
)


def _entry_bytes(catalog):
    return {
        key: catalog.entry_path(key).read_bytes() for key in catalog.keys()
    }


class TestSweepMinimality:
    def test_untouched_inputs_zero_recompute_identical_bytes(self, tmp_path):
        catalog = ResultsCatalog(tmp_path / "catalog")
        log = ProvenanceLog(tmp_path / "p.jsonl")
        run_sweep(TINY, catalog, log)
        before = _entry_bytes(catalog)
        for _ in range(2):
            outcome = run_sweep(TINY, catalog, log)
            assert outcome.recomputed == []
            assert outcome.invalidation.invalid == ()
        assert _entry_bytes(catalog) == before

    def test_changed_input_recomputes_downstream(self, tmp_path):
        catalog = ResultsCatalog(tmp_path / "catalog")
        log = ProvenanceLog(tmp_path / "p.jsonl")
        run_sweep(TINY, catalog, log)
        mutated = dataclasses.replace(TINY, vms=TINY.vms + 5)
        outcome = run_sweep(mutated, catalog, log)
        # Soundness at the sweep level: the whole synthetic cone redoes.
        assert set(outcome.recomputed) == {
            p.artifact_id for p in outcome.points
        }


class TestKillResumeBitIdentity:
    def test_killed_then_resumed_sweep_matches_clean(self, tmp_path):
        retry = RetryPolicy(
            max_retries=2, backoff_base_s=0.0, sleep=lambda _s: None
        )

        # Clean reference run, no faults.
        clean_catalog = ResultsCatalog(tmp_path / "clean")
        run_sweep(
            TINY, clean_catalog, ProvenanceLog(tmp_path / "clean.jsonl")
        )

        # Faulted run: first attempt of every task is killed; retries
        # recover through the checkpoint journal.
        catalog = ResultsCatalog(tmp_path / "faulted")
        log = ProvenanceLog(tmp_path / "faulted.jsonl")
        journal = CheckpointJournal(directory=tmp_path / "journal")
        policy = ResiliencePolicy(
            journal=journal,
            retry=retry,
            faults=FaultPlan(kill_indices=(0, 1), kill_attempts=1),
        )
        with activated(policy):
            outcome = run_sweep(TINY, catalog, log)
        assert len(outcome.recomputed) == 2
        assert _entry_bytes(catalog) == _entry_bytes(clean_catalog)

        # And a resumed warm pass over the same journal stays identical.
        with activated(ResiliencePolicy(journal=journal, retry=retry)):
            warm = run_sweep(TINY, catalog, log)
        assert warm.recomputed == []
        assert _entry_bytes(catalog) == _entry_bytes(clean_catalog)
