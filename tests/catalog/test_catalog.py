"""Unit tests for the closure-keyed results catalog store."""

import gzip
import json

from repro.catalog import (
    ResultsCatalog,
    canonical_json,
    closure_key,
    payload_digest,
)

INPUTS = {"code": "c1", "trace/synthetic": "t1"}
PAYLOAD = {"cluster_savings": 0.2, "point": {"sku": "GreenSKU-Full"}}


class TestKeys:
    def test_closure_key_order_independent(self):
        assert closure_key({"a": "1", "b": "2"}) == closure_key(
            {"b": "2", "a": "1"}
        )

    def test_closure_key_moves_with_any_input(self):
        base = closure_key(INPUTS)
        assert closure_key({**INPUTS, "code": "c2"}) != base
        assert closure_key({**INPUTS, "extra": "x"}) != base

    def test_canonical_json_is_sorted_and_compact(self):
        assert canonical_json({"b": 1, "a": [1, 2]}) == '{"a":[1,2],"b":1}'

    def test_payload_digest_tracks_content(self):
        assert payload_digest({"a": 1}) == payload_digest({"a": 1})
        assert payload_digest({"a": 1}) != payload_digest({"a": 2})


class TestStore:
    def test_put_get_roundtrip(self, tmp_path):
        catalog = ResultsCatalog(tmp_path)
        key = closure_key(INPUTS)
        catalog.put(key, INPUTS, PAYLOAD)
        document = catalog.get(key)
        assert document["payload"] == PAYLOAD
        assert document["inputs"] == INPUTS
        assert catalog.get_payload(key) == PAYLOAD
        assert catalog.hits == 2
        assert catalog.writes == 1

    def test_entry_bytes_deterministic(self, tmp_path):
        a = ResultsCatalog(tmp_path / "a")
        b = ResultsCatalog(tmp_path / "b")
        key = closure_key(INPUTS)
        pa = a.put(key, INPUTS, PAYLOAD)
        pb = b.put(key, INPUTS, PAYLOAD)
        assert pa.read_bytes() == pb.read_bytes()

    def test_unchanged_republish_skips_write(self, tmp_path):
        catalog = ResultsCatalog(tmp_path)
        key = closure_key(INPUTS)
        catalog.put(key, INPUTS, PAYLOAD)
        mtime = catalog.entry_path(key).stat().st_mtime_ns
        catalog.put(key, INPUTS, PAYLOAD)
        assert catalog.unchanged == 1
        assert catalog.writes == 1
        assert catalog.entry_path(key).stat().st_mtime_ns == mtime

    def test_miss_counts(self, tmp_path):
        catalog = ResultsCatalog(tmp_path)
        assert catalog.get("absent") is None
        assert catalog.misses == 1

    def test_corrupt_entry_quarantined_as_miss(self, tmp_path):
        catalog = ResultsCatalog(tmp_path)
        key = closure_key(INPUTS)
        catalog.put(key, INPUTS, PAYLOAD)
        catalog.entry_path(key).write_bytes(b"not gzip at all")
        assert catalog.get(key) is None
        assert catalog.quarantined == 1
        assert not catalog.entry_path(key).exists()
        quarantined = list(catalog.quarantine_dir.iterdir())
        assert len(quarantined) == 1

    def test_truncated_gzip_quarantined(self, tmp_path):
        catalog = ResultsCatalog(tmp_path)
        key = closure_key(INPUTS)
        path = catalog.put(key, INPUTS, PAYLOAD)
        path.write_bytes(path.read_bytes()[:-5])
        assert catalog.get(key) is None
        assert catalog.quarantined == 1

    def test_non_document_json_quarantined(self, tmp_path):
        catalog = ResultsCatalog(tmp_path)
        key = closure_key(INPUTS)
        catalog.entry_path(key).parent.mkdir(parents=True, exist_ok=True)
        catalog.entry_path(key).write_bytes(
            gzip.compress(json.dumps([1, 2]).encode("utf-8"))
        )
        assert catalog.get(key) is None
        assert catalog.quarantined == 1

    def test_keys_and_gc(self, tmp_path):
        catalog = ResultsCatalog(tmp_path)
        keys = []
        for i in range(3):
            inputs = {**INPUTS, "cfg": str(i)}
            key = closure_key(inputs)
            keys.append(key)
            catalog.put(key, inputs, {"i": i})
        assert catalog.keys() == sorted(keys)
        removed = catalog.gc(keys[:1])
        assert removed == 2
        assert catalog.evicted == 2
        assert catalog.keys() == [keys[0]]
        assert catalog.gc(keys[:1]) == 0

    def test_manifest_shape(self, tmp_path):
        catalog = ResultsCatalog(tmp_path)
        key = closure_key(INPUTS)
        catalog.put(key, INPUTS, PAYLOAD)
        catalog.get(key)
        manifest = catalog.manifest()
        assert manifest["schema"] == "repro-catalog/1"
        assert manifest["entries"] == 1
        assert manifest["total_bytes"] > 0
        assert manifest["hits"] == 1 and manifest["writes"] == 1

    def test_missing_directory_reads_empty(self, tmp_path):
        catalog = ResultsCatalog(tmp_path / "never-created")
        assert catalog.keys() == []
        assert catalog.manifest()["entries"] == 0


class TestDiskCacheEvict:
    def test_evict_counts_and_deletes(self, tmp_path):
        from repro.core.runner import MISSING, DiskCache

        cache = DiskCache(tmp_path)
        cache.put("k1", 1)
        cache.put("k2", 2)
        assert cache.evict(["k1", "k-absent"]) == 1
        assert cache.evicted == 1
        assert cache.get("k1") is MISSING
        assert cache.get("k2") == 2


class TestCacheEffectivenessLines:
    def test_renders_active_layers_only(self):
        from repro.core.telemetry import cache_effectiveness_lines

        lines = cache_effectiveness_lines(
            {
                "catalog.hits": 9,
                "catalog.misses": 1,
                "catalog.writes": 1,
            }
        )
        joined = "\n".join(lines)
        assert "results catalog" in joined
        assert "90.0%" in joined
        assert "writes 1" in joined
        assert "disk cache" not in joined
        assert "trace store" not in joined

    def test_silent_when_no_cache_activity(self):
        from repro.core.telemetry import cache_effectiveness_lines

        assert cache_effectiveness_lines({}) == []
        assert cache_effectiveness_lines({"other.counter": 3}) == []
