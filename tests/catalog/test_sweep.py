"""Tests for the incremental sweep driver and the CXL-fraction axis."""

import dataclasses

import pytest

from repro.catalog import (
    ResultsCatalog,
    SweepSpec,
    closure_key,
    current_leaf_inputs,
    point_inputs,
    run_sweep,
    sweep_points,
    with_cxl_dimms,
)
from repro.core.errors import ConfigError, SimulationError
from repro.core.provenance import ProvenanceLog
from repro.hardware.components import CxlControllerSpec, DramSpec
from repro.hardware.sku import greensku_cxl, greensku_full, paper_skus

#: A tiny two-point grid every driver test shares (fast: ~0.1 s total).
TINY = SweepSpec(
    skus=("GreenSKU-Full",),
    adoption_rules=("carbon-aware", "always"),
    buffer_fractions=(0.15,),
    cxl_dimm_counts=(None,),
    backends=("synthetic",),
    seed=3,
    vms=30,
    days=0.5,
)


def _memory_layout(sku):
    """(local_gb, cxl_gb, controllers) of a SKU's memory subsystem."""
    local = cxl = controllers = 0
    for spec, count in sku.parts:
        if isinstance(spec, DramSpec):
            if spec.via_cxl:
                cxl += spec.capacity_gb * count
            else:
                local += spec.capacity_gb * count
        elif isinstance(spec, CxlControllerSpec):
            controllers += count
    return local, cxl, controllers


class TestSpec:
    def test_grid_is_axis_product(self):
        spec = SweepSpec(
            skus=("GreenSKU-Full", "Baseline"),
            adoption_rules=("carbon-aware",),
            buffer_fractions=(0.15, 0.25),
            cxl_dimm_counts=(None, 8),
            backends=("synthetic",),
        )
        points = sweep_points(spec)
        assert len(points) == 2 * 1 * 2 * 2 * 1
        assert len({p.artifact_id for p in points}) == len(points)

    def test_unknown_sku_rejected(self):
        with pytest.raises(ConfigError, match="unknown SKU"):
            SweepSpec(skus=("MegaSKU",))

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigError, match="unknown trace backend"):
            SweepSpec(backends=("s3",))

    def test_empty_axis_rejected(self):
        with pytest.raises(ConfigError, match="at least one value"):
            SweepSpec(adoption_rules=())

    def test_artifact_id_excludes_trace_shape(self):
        a, b = sweep_points(TINY), sweep_points(
            dataclasses.replace(TINY, seed=99)
        )
        assert [p.artifact_id for p in a] == [p.artifact_id for p in b]

    def test_closure_key_moves_with_trace_shape(self):
        mutated = dataclasses.replace(TINY, seed=99)
        keys_a = [
            closure_key(point_inputs(p, current_leaf_inputs(TINY)))
            for p in sweep_points(TINY)
        ]
        keys_b = [
            closure_key(point_inputs(p, current_leaf_inputs(mutated)))
            for p in sweep_points(mutated)
        ]
        assert set(keys_a).isdisjoint(keys_b)


class TestWithCxlDimms:
    def test_reproduces_stock_greensku_cxl(self):
        stock = greensku_cxl()
        rebuilt = with_cxl_dimms(stock, 8)
        assert _memory_layout(rebuilt) == _memory_layout(stock)
        assert rebuilt.memory_gb == stock.memory_gb

    def test_zero_dimms_strips_cxl(self):
        sku = with_cxl_dimms(greensku_full(), 0)
        local, cxl_gb, controllers = _memory_layout(sku)
        assert cxl_gb == 0 and controllers == 0
        assert local == greensku_full().memory_gb

    def test_capacity_preserved_across_counts(self):
        target = greensku_full().memory_gb
        for dimms in (2, 4, 8):
            sku = with_cxl_dimms(greensku_full(), dimms)
            local, cxl_gb, controllers = _memory_layout(sku)
            assert cxl_gb == dimms * 32
            assert local + cxl_gb == target
            assert controllers == -(-dimms // 4)

    def test_odd_count_rejected(self):
        with pytest.raises(ConfigError, match="even"):
            with_cxl_dimms(greensku_full(), 3)

    def test_negative_count_rejected(self):
        with pytest.raises(ConfigError, match="even"):
            with_cxl_dimms(greensku_full(), -2)

    def test_all_cxl_rejected(self):
        # Enough reused DIMMs to displace all local memory is an error.
        target = greensku_full().memory_gb
        too_many = 2 * ((target // 32) + 2)
        with pytest.raises(ConfigError, match="local memory"):
            with_cxl_dimms(greensku_full(), too_many)

    def test_name_encodes_count(self):
        assert with_cxl_dimms(greensku_full(), 4).name.endswith("-cxl4")


class TestRunSweep:
    def test_cold_then_warm(self, tmp_path):
        catalog = ResultsCatalog(tmp_path / "catalog")
        log = ProvenanceLog(tmp_path / "p.jsonl")
        cold = run_sweep(TINY, catalog, log)
        assert len(cold.recomputed) == 2 and cold.warm == []
        assert all(p is not None for p in cold.payloads)
        warm = run_sweep(TINY, catalog, log)
        assert warm.recomputed == [] and len(warm.warm) == 2
        assert warm.payloads == cold.payloads
        assert warm.summary == cold.summary
        assert warm.summary_key == cold.summary_key

    def test_summary_rolls_up_every_point(self, tmp_path):
        outcome = run_sweep(
            TINY,
            ResultsCatalog(tmp_path / "catalog"),
            ProvenanceLog(tmp_path / "p.jsonl"),
        )
        assert outcome.summary["count"] == 2
        rows = {row["id"]: row for row in outcome.summary["points"]}
        for point, payload in zip(outcome.points, outcome.payloads):
            assert rows[point.artifact_id]["cluster_savings"] == (
                payload["cluster_savings"]
            )

    def test_incremental_recompute_after_input_change(self, tmp_path):
        catalog = ResultsCatalog(tmp_path / "catalog")
        log = ProvenanceLog(tmp_path / "p.jsonl")
        run_sweep(TINY, catalog, log)
        mutated = dataclasses.replace(TINY, seed=TINY.seed + 1)
        outcome = run_sweep(mutated, catalog, log)
        assert outcome.invalidation.changed_inputs == ("trace/synthetic",)
        assert set(outcome.invalidation.invalid) == {
            p.artifact_id for p in outcome.points
        } | {"sweep/summary"}
        assert len(outcome.recomputed) == 2

    def test_provenance_records_points_and_summary(self, tmp_path):
        log = ProvenanceLog(tmp_path / "p.jsonl")
        outcome = run_sweep(TINY, ResultsCatalog(tmp_path / "catalog"), log)
        latest = log.latest()
        assert "sweep/summary" in latest
        for point in outcome.points:
            assert latest[point.artifact_id].kind == "point"
        summary_inputs = latest["sweep/summary"].inputs_map
        for point in outcome.points:
            assert point.artifact_id in summary_inputs

    def test_live_keys_cover_points_and_summary(self, tmp_path):
        catalog = ResultsCatalog(tmp_path / "catalog")
        outcome = run_sweep(
            TINY, catalog, ProvenanceLog(tmp_path / "p.jsonl")
        )
        assert set(outcome.live_keys()) == set(catalog.keys())

    def test_payload_shape(self, tmp_path):
        outcome = run_sweep(
            TINY,
            ResultsCatalog(tmp_path / "catalog"),
            ProvenanceLog(tmp_path / "p.jsonl"),
        )
        payload = outcome.payloads[0]
        assert payload["point"]["sku"] == "GreenSKU-Full"
        # Tiny clusters can price below baseline; just bound the share.
        assert -1.0 < payload["cluster_savings"] < 1.0
        assert payload["sizing"]["mixed_green_servers"] >= 0
        assert payload["mixed"]["total_kg"] > 0

    def test_reconciliation_accepts_matching_recompute(self, tmp_path):
        # A catalog that forgets its reads forces a recompute onto
        # existing entries; identical bytes must reconcile silently.
        class AmnesiacCatalog(ResultsCatalog):
            def get(self, key):
                self.misses += 1
                return None

        catalog = AmnesiacCatalog(tmp_path / "catalog")
        log = ProvenanceLog(tmp_path / "p.jsonl")
        run_sweep(TINY, catalog, log)
        outcome = run_sweep(TINY, catalog, log)
        assert len(outcome.recomputed) == 2
        assert catalog.unchanged >= 2  # republished byte-identically

    def test_reconciliation_rejects_divergent_entry(self, tmp_path):
        class AmnesiacCatalog(ResultsCatalog):
            def get(self, key):
                self.misses += 1
                return None

        catalog = AmnesiacCatalog(tmp_path / "catalog")
        log = ProvenanceLog(tmp_path / "p.jsonl")
        outcome = run_sweep(TINY, catalog, log)
        # Tamper: republish one point's entry with a divergent payload
        # at the same closure key (what nondeterminism would look like).
        key = outcome.keys[0]
        leaves = current_leaf_inputs(TINY)
        inputs = point_inputs(outcome.points[0], leaves)
        data = ResultsCatalog.encode_entry(inputs, {"tampered": True})
        catalog.entry_path(key).write_bytes(data)
        with pytest.raises(SimulationError, match="reconciliation"):
            run_sweep(TINY, catalog, log)

    def test_paper_skus_all_sweepable(self, tmp_path):
        # Every paper SKU name is accepted by the spec (cheap check:
        # grid construction only, no evaluation).
        spec = SweepSpec(skus=tuple(sorted(paper_skus())))
        assert len(sweep_points(spec)) == len(paper_skus())


class TestCarbonAxes:
    """The ``grid_signal`` x ``placement_policy`` axes (PR 10)."""

    def test_new_axes_multiply_the_grid(self):
        spec = dataclasses.replace(
            TINY,
            grid_signals=("diurnal", "seasonal"),
            placement_policies=("blind", "carbon_aware"),
        )
        points = sweep_points(spec)
        assert len(points) == 2 * 2 * 2  # rules x signals x policies
        assert len({p.artifact_id for p in points}) == len(points)

    def test_default_axes_are_singletons(self):
        # The pre-axis grid cardinality must be preserved exactly.
        assert len(sweep_points(TINY)) == 2
        point = sweep_points(TINY)[0]
        assert point.grid_signal is None
        assert point.placement_policy == "blind"

    def test_unknown_signal_rejected(self):
        with pytest.raises(ConfigError, match="unknown grid signal"):
            dataclasses.replace(TINY, grid_signals=("lunar",))

    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigError, match="unknown placement policy"):
            dataclasses.replace(TINY, placement_policies=("greedy",))

    def test_carbon_aware_requires_signals(self):
        with pytest.raises(ConfigError, match="needs a grid signal"):
            dataclasses.replace(
                TINY,
                grid_signals=(None,),
                placement_policies=("blind", "carbon_aware"),
            )

    def test_axes_rekey_points(self):
        leaves = current_leaf_inputs(TINY)
        base = {
            closure_key(point_inputs(p, leaves)) for p in sweep_points(TINY)
        }
        signed = dataclasses.replace(TINY, grid_signals=("diurnal",))
        keyed = {
            closure_key(point_inputs(p, leaves))
            for p in sweep_points(signed)
        }
        assert base.isdisjoint(keyed)

    def test_signal_points_carry_carbon_payload(self, tmp_path):
        spec = dataclasses.replace(
            TINY,
            adoption_rules=("always",),
            grid_signals=("diurnal",),
            placement_policies=("blind", "carbon_aware"),
        )
        catalog = ResultsCatalog(tmp_path / "catalog")
        log = ProvenanceLog(tmp_path / "p.jsonl")
        cold = run_sweep(spec, catalog, log)
        assert len(cold.recomputed) == 2
        for point, payload in zip(cold.points, cold.payloads):
            section = payload["carbon_aware"]
            assert section["signal"] == "diurnal"
            assert section["policy"] == point.placement_policy
            assert section["blind_kg"] > section["aware_kg"] > 0
            assert section["blind_digest"] != section["aware_digest"]
            assert payload["point"]["grid_signal"] == "diurnal"
        rows = {row["id"]: row for row in cold.summary["points"]}
        for point in cold.points:
            assert "carbon_delta_kg" in rows[point.artifact_id]
        # Warm pass: every carbon point served from the catalog.
        warm = run_sweep(spec, catalog, log)
        assert warm.recomputed == [] and len(warm.warm) == 2
        assert warm.payloads == cold.payloads

    def test_signalless_payload_keeps_pre_axis_shape(self, tmp_path):
        outcome = run_sweep(
            TINY,
            ResultsCatalog(tmp_path / "catalog"),
            ProvenanceLog(tmp_path / "p.jsonl"),
        )
        for payload in outcome.payloads:
            assert "carbon_aware" not in payload
