"""Docstring-coverage lint for the public API surface.

Walks every module under ``src/repro`` with ``ast`` (no imports, so a
syntax-broken or slow-to-import module cannot hide) and requires a
docstring on:

- every module,
- every public module-level function and class,
- every public method of a public class.

Names starting with ``_`` are private and exempt, as are test helpers
and ``__main__``-style guards.  Pre-existing gaps live in
``tests/docstring_baseline.txt`` — one dotted name per line.  The
baseline is a ratchet: a documented symbol must also be *removed* from
it, so coverage can only go up.
"""

import ast
import pathlib

SRC = pathlib.Path(__file__).parent.parent / "src" / "repro"
BASELINE_FILE = pathlib.Path(__file__).parent / "docstring_baseline.txt"


def _public(name):
    return not name.startswith("_")


def _missing_in_module(path):
    rel = path.relative_to(SRC.parent)
    dotted = ".".join(rel.with_suffix("").parts)
    if dotted.endswith(".__init__"):
        dotted = dotted[: -len(".__init__")]
    tree = ast.parse(path.read_text(), filename=str(path))
    missing = []
    if ast.get_docstring(tree) is None:
        missing.append(dotted)
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if _public(node.name) and ast.get_docstring(node) is None:
                missing.append(f"{dotted}.{node.name}")
        elif isinstance(node, ast.ClassDef) and _public(node.name):
            if ast.get_docstring(node) is None:
                missing.append(f"{dotted}.{node.name}")
            for sub in node.body:
                if (
                    isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and _public(sub.name)
                    and ast.get_docstring(sub) is None
                ):
                    missing.append(f"{dotted}.{node.name}.{sub.name}")
    return missing


def _all_missing():
    missing = []
    for path in sorted(SRC.rglob("*.py")):
        missing.extend(_missing_in_module(path))
    return missing


def _baseline():
    if not BASELINE_FILE.exists():
        return set()
    lines = BASELINE_FILE.read_text().splitlines()
    return {
        line.strip()
        for line in lines
        if line.strip() and not line.strip().startswith("#")
    }


def test_public_api_is_documented():
    missing = set(_all_missing())
    baseline = _baseline()
    new_gaps = sorted(missing - baseline)
    assert not new_gaps, (
        "public symbols without docstrings (add one, or — for "
        "pre-existing code only — append to tests/docstring_baseline.txt):"
        "\n  " + "\n  ".join(new_gaps)
    )


def test_baseline_is_a_ratchet():
    missing = set(_all_missing())
    stale = sorted(_baseline() - missing)
    assert not stale, (
        "baseline entries now documented (or gone) — delete them from "
        "tests/docstring_baseline.txt so coverage cannot regress:\n  "
        + "\n  ".join(stale)
    )
