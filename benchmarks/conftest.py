"""Shared benchmark fixtures.

Each benchmark regenerates one paper table/figure at full scale, times it
with pytest-benchmark, and writes the rendered rows/series to
``benchmarks/out/<name>.txt`` (plus ``.csv`` where the experiment exports
series data) so results persist after the run.

Heavy experiments run once per benchmark (``rounds=1``) — the interesting
output is the artifact, not a timing distribution.
"""

from __future__ import annotations

import pathlib

import pytest

OUT_DIR = pathlib.Path(__file__).parent / "out"


@pytest.fixture(scope="session")
def out_dir() -> pathlib.Path:
    """Directory collecting rendered benchmark artifacts."""
    OUT_DIR.mkdir(exist_ok=True)
    return OUT_DIR


@pytest.fixture(scope="session")
def save(out_dir):
    """Writer: ``save(name, text)`` persists one artifact and echoes it.

    Artifacts are written atomically (temp file + rename) so an aborted
    benchmark run never leaves a truncated file under a final name.
    """
    from repro.core.ioutil import atomic_write_text

    def _save(name: str, text: str) -> None:
        path = out_dir / name
        atomic_write_text(path, text + "\n")
        print(f"\n{text}\n[written to {path}]")

    return _save


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


@pytest.fixture()
def execution_stats():
    """Instrument the benchmark with telemetry and report its manifest.

    The benchmark body runs inside a :func:`repro.core.telemetry.capture`;
    the yielded callable validates the capture against the manifest
    schema and returns it rendered — counters (tasks, cache hits/misses,
    sizing probes, engine work), timers, and spans — replacing the old
    ad-hoc runner/sizing print lines in the bench log.
    """
    from repro.core import telemetry
    from repro.core.runner import reset_runner_stats
    from repro.gsf.sizing import reset_sizing_stats

    reset_runner_stats()
    reset_sizing_stats()

    with telemetry.capture() as tel:

        def report() -> str:
            manifest = tel.manifest(command="benchmark")
            problems = telemetry.validate_manifest(manifest)
            assert not problems, problems
            return telemetry.render_manifest(manifest)

        yield report
