"""Benchmark: the resilience layer's checkpoint/resume economics.

Measures a Fig. 9 suite run three ways — clean, fault-injected (worker
kills on a third of the tasks), and resumed from the interrupted run's
journal — and asserts the contract the layer sells: the fault-injected
run retries its way to the same result, and the resumed run is
journal-hits-only (no recomputation) and bit-identical.  The artifact
records the measured cost of each mode next to the retry/resume
counters.

``REPRO_BENCH_TRACES`` scales the suite down for CI smoke runs.
"""

import os
import time

from repro.core import telemetry
from repro.core.faults import FaultPlan
from repro.core.resilience import (
    CheckpointJournal,
    ResiliencePolicy,
    RetryPolicy,
    activated,
)
from repro.experiments import fig9_packing

from conftest import run_once

TRACE_COUNT = int(os.environ.get("REPRO_BENCH_TRACES", "35"))
VMS = 150


def _timed(fn):
    start = time.perf_counter()
    with telemetry.capture() as tel:
        result = fn()
    return result, time.perf_counter() - start, tel.manifest(command="bench")


def test_resilience_checkpoint_resume(benchmark, save, tmp_path):
    clean, clean_s, _ = _timed(
        lambda: fig9_packing.run(
            trace_count=TRACE_COUNT, mean_concurrent_vms=VMS, jobs=1
        )
    )

    journal = CheckpointJournal(tmp_path / "journal")
    faulty_policy = ResiliencePolicy(
        journal=journal,
        retry=RetryPolicy(max_retries=2, backoff_base_s=0.0),
        faults=FaultPlan(
            kill_indices=tuple(range(0, TRACE_COUNT, 3)), kill_attempts=1
        ),
    )

    def faulty_run():
        with activated(faulty_policy):
            return fig9_packing.run(
                trace_count=TRACE_COUNT, mean_concurrent_vms=VMS, jobs=1
            )

    faulty, faulty_s, faulty_manifest = _timed(faulty_run)
    assert faulty == clean, "fault-injected run must match the clean run"

    resume_policy = ResiliencePolicy(journal=journal)

    def resumed_run():
        with activated(resume_policy):
            return fig9_packing.run(
                trace_count=TRACE_COUNT, mean_concurrent_vms=VMS, jobs=1
            )

    resumed, resumed_s, resumed_manifest = _timed(
        lambda: run_once(benchmark, resumed_run)
    )
    assert resumed == clean, "resumed run must be bit-identical"
    assert resumed_manifest["counters"]["resilience.resumed"] == TRACE_COUNT

    counters = faulty_manifest["counters"]
    lines = [
        "resilience: Fig 9 suite "
        f"({TRACE_COUNT} traces, {VMS} mean VMs, jobs=1)",
        f"  clean run:          {clean_s:8.2f} s",
        f"  fault-injected run: {faulty_s:8.2f} s "
        f"({counters.get('resilience.retries', 0)} retries, "
        f"{counters.get('resilience.checkpointed', 0)} checkpoints)",
        f"  resumed run:        {resumed_s:8.2f} s "
        f"({resumed_manifest['counters']['resilience.resumed']} journal "
        "hits, 0 recomputed)",
        "  contract: fault-injected == clean, resumed == clean "
        "(asserted bit-identical)",
    ]
    if TRACE_COUNT < 35:
        return  # smoke scale: don't overwrite the full-scale artifact
    save("resilience_checkpoint_resume.txt", "\n".join(lines))
