"""Benchmark: Table III — GreenSKU-Efficient scaling factors."""

from repro.experiments import table3_scaling

from conftest import run_once


def test_table3_scaling(benchmark, save):
    result = run_once(benchmark, table3_scaling.run)
    save("table3_scaling.txt", table3_scaling.render(result))
    assert result.matched_cells == 57
