"""Benchmark: Azure vmtable ingestion — the CI ingestion smoke.

Always-on gates for the real-trace backend: the bundled sample must
parse, register in the trace store, replay bit-identically on the
default engine, and produce a schema-valid marginals report — all
pinned against ``benchmarks/golden_ingest_digests.json`` (refresh with
``REPRO_UPDATE_GOLDEN=1`` after an intentional sample/schema change).
Timings are artifacts, not gates: ingestion throughput varies with the
runner, digests must not.
"""

import json
import os
import pathlib
import time

from repro.allocation.cluster import (
    ClusterSpec,
    adopt_everything,
    outcome_digest,
    replay_columnar,
    simulate,
)
from repro.allocation.ingest import (
    bundled_sample_path,
    file_digest,
    ingest_azure_vm_trace,
)
from repro.allocation.store import TraceStore
from repro.analysis.marginals import (
    marginals_report,
    validate_marginals_report,
)
from repro.hardware.sku import baseline_gen2, baseline_gen3, greensku_full

GOLDEN_INGEST_PATH = (
    pathlib.Path(__file__).parent / "golden_ingest_digests.json"
)


def _cluster():
    return ClusterSpec.of(
        (baseline_gen3(), 10), (baseline_gen2(), 6), (greensku_full(), 6)
    )


def _golden_entry():
    sample = bundled_sample_path()
    trace, report = ingest_azure_vm_trace(sample, name="azure-sample")
    outcome = simulate(
        trace, _cluster(), adopt_everything, snapshot_hours=6.0,
        engine="reference",
    )
    return trace, report, {
        "source_sha256": file_digest(sample),
        "trace_digest": trace.digest(),
        "outcome_digest": outcome_digest(outcome),
    }


def test_ingest_golden_digest(save):
    """Sample bytes -> trace -> replay all match the pinned goldens."""
    trace, report, entry = _golden_entry()
    if os.environ.get("REPRO_UPDATE_GOLDEN", "0") not in ("", "0"):
        GOLDEN_INGEST_PATH.write_text(
            json.dumps({"azure-sample": entry}, indent=2) + "\n"
        )
    golden = json.loads(GOLDEN_INGEST_PATH.read_text())["azure-sample"]
    assert entry == golden, (
        "ingested-sample digests diverged from the pinned goldens"
    )
    # The replayed outcome must also be chunking-independent.
    chunked = outcome_digest(
        replay_columnar(
            trace, _cluster(), adopt_everything, snapshot_hours=6.0,
            chunk_events=64,
        )
    )
    assert chunked == golden["outcome_digest"]
    save(
        "ingest_digests.txt",
        "\n".join(
            [
                f"source: {entry['source_sha256']}",
                f"trace:  {entry['trace_digest']}",
                f"replay: {entry['outcome_digest']}",
                f"rows:   {report.rows_kept}/{report.rows_total} kept",
            ]
        ),
    )


def test_ingest_store_round_trip(save, tmp_path):
    """Store hits skip parsing and stay digest-equal on both load paths."""
    store = TraceStore(directory=tmp_path / "traces")
    sample = bundled_sample_path()

    t0 = time.perf_counter()
    fresh, r0 = ingest_azure_vm_trace(sample, store=store)
    parse_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    eager, r1 = ingest_azure_vm_trace(sample, store=store)
    eager_s = time.perf_counter() - t0
    mapped, r2 = ingest_azure_vm_trace(sample, store=store, mmap=True)

    assert (r0.store, r1.store, r2.store) == ("miss", "hit", "hit")
    assert fresh.digest() == eager.digest() == mapped.digest()
    save(
        "ingest_store.txt",
        f"azure sample ({fresh.columns.n} VMs)\n"
        f"  parse + register: {parse_s * 1000:.1f}ms\n"
        f"  store hit (eager): {eager_s * 1000:.1f}ms\n"
        f"  eager/mmap digest-equal: True",
    )


def test_ingest_marginals_report(save):
    """The marginals report validates and is run-to-run deterministic."""
    trace, _report = ingest_azure_vm_trace(
        bundled_sample_path(), name="azure-sample"
    )
    report = marginals_report(trace)
    problems = validate_marginals_report(report)
    assert not problems, problems
    again = json.dumps(marginals_report(trace), sort_keys=True)
    assert json.dumps(report, sort_keys=True) == again
    lines = [
        f"{metric}: KS={entry['ks_distance']:.4f}"
        for metric, entry in sorted(report["metrics"].items())
    ]
    save(
        "ingest_marginals.txt",
        "marginals report (azure sample vs synthetic reference)\n  "
        + "\n  ".join(lines),
    )
