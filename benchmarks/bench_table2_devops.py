"""Benchmark: Table II — DevOps build slowdowns."""

from repro.experiments import table2_devops

from conftest import run_once


def test_table2_devops(benchmark, save):
    result = run_once(benchmark, table2_devops.run)
    save("table2_devops.txt", table2_devops.render(result))
    assert result.max_abs_error() < 0.005
