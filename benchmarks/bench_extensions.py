"""Benchmark: extension studies beyond the paper's main evaluation.

- the validation report (all fast calibration anchors),
- the lifetime-extension study through GSF (Section VII-B's "GSF can
  evaluate server lifetime extension ..."),
- the second-generation GreenSKU options (Section III's residual
  emissions: NIC reuse, low-power DRAM),
- the generation-aware reference accounting.
"""

from repro.allocation.traces import TraceParams, generate_trace
from repro.analysis.lifetime import lifetime_study
from repro.analysis.second_gen import second_generation_study
from repro.core.tables import render_table
from repro.experiments import validation
from repro.gsf.framework import Gsf
from repro.hardware.sku import greensku_full

from conftest import run_once


def test_validation_report(benchmark, save):
    checks = run_once(benchmark, validation.run)
    save("validation.txt", validation.render(checks))
    assert all(c.passed for c in checks)


def test_lifetime_study(benchmark, save):
    study = run_once(benchmark, lifetime_study)
    table = render_table(
        ["lifetime (y)", "embodied/core-y", "operational/core-y",
         "maintenance/core-y", "total/core-y"],
        [
            [p.lifetime_years, p.embodied_per_core_year,
             p.operational_per_core_year,
             p.maintenance_overhead_per_core_year,
             p.total_per_core_year]
            for p in study.points
        ],
        title=(
            "Lifetime extension through GSF (wear-out + efficiency "
            f"stagnation priced in); optimum = "
            f"{study.optimal_lifetime_years:.0f} years"
        ),
    )
    save("lifetime_study.txt", table)
    assert 6 < study.optimal_lifetime_years < 15


def test_second_generation_options(benchmark, save):
    options = run_once(benchmark, second_generation_study)
    table = render_table(
        ["design", "kgCO2e/core", "savings vs baseline",
         "increment vs GreenSKU-Full"],
        [
            [o.name, o.total_per_core, f"{o.savings_vs_baseline:.1%}",
             f"{o.incremental_savings_vs_gen1_greensku:.1%}"]
            for o in options
        ],
        title="Second-generation GreenSKU options (paper: low returns "
        "today)",
    )
    save("second_generation.txt", table)
    increments = [
        o.incremental_savings_vs_gen1_greensku
        for o in options
        if o.name != "GreenSKU-Full"
    ]
    assert all(0 < inc < 0.10 for inc in increments)


def test_generation_aware_accounting(benchmark, save):
    gsf = Gsf()
    trace = generate_trace(
        seed=4, params=TraceParams(duration_days=7, mean_concurrent_vms=400)
    )

    def run():
        return (
            gsf.evaluate_generation_aware(greensku_full(), trace),
            gsf.evaluate(greensku_full(), trace),
        )

    aware, default = run_once(benchmark, run)
    text = "\n".join(
        [
            "Generation-aware vs all-Gen3 reference accounting:",
            f"  generation-aware cluster savings: "
            f"{aware.cluster_savings:.1%} "
            f"(reference {aware.sizing.reference_by_gen})",
            f"  default (all-Gen3 reference):     "
            f"{default.cluster_savings:.1%}",
        ]
    )
    save("generation_aware.txt", text)
    assert aware.cluster_savings > 0


def test_fleet_transition(benchmark, save):
    from repro.analysis.transition import transition_study

    study = run_once(
        benchmark, lambda: transition_study(fleet_servers=100_000)
    )
    text = "\n".join(
        [
            "Fleet transition 2024-2030 (100k servers, GreenSKU-Full):",
            f"  adopt now:    {study.savings_by_2030_now:.1%} cumulative "
            "savings by 2030",
            f"  adopt in 2y:  {study.savings_by_2030_delayed:.1%}",
            f"  cost of the two-year delay: "
            f"{study.cost_of_delay_kg / 1e6:,.0f} ktCO2e",
        ]
    )
    save("fleet_transition.txt", text)
    assert study.savings_by_2030_now > study.savings_by_2030_delayed > 0


def test_temporal_shifting(benchmark, save):
    from repro.carbon.temporal import (
        schedule_batch,
        synthetic_batch_workload,
    )

    result = run_once(
        benchmark,
        lambda: schedule_batch(synthetic_batch_workload(jobs=60)),
    )
    save(
        "temporal_shifting.txt",
        "Temporal carbon-aware batch scheduling: "
        f"{result.savings_fraction:.0%} of flexible operational emissions "
        f"({result.immediate_kg:.1f} -> {result.shifted_kg:.1f} kg)",
    )
    assert result.savings_fraction > 0.05
