"""Benchmark: Fig. 8 — CXL latency impact on Moses vs HAProxy."""

from repro.experiments import fig8_cxl

from conftest import run_once


def test_fig8_cxl(benchmark, save):
    panels = run_once(benchmark, fig8_cxl.run)
    save("fig8_cxl.txt", fig8_cxl.render(panels))
    save("fig8_cxl.csv", fig8_cxl.to_csv(panels))
    moses = next(p for p in panels if p.app_name == "Moses")
    haproxy = next(p for p in panels if p.app_name == "HAProxy")
    assert moses.peak_reduction > haproxy.peak_reduction
    assert abs(haproxy.peak_reduction - 0.11) < 0.03
