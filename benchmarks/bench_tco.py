"""Benchmark: Section VII-A — cost vs carbon efficiency."""

from repro.experiments import section7_tco

from conftest import run_once


def test_tco(benchmark, save):
    result = run_once(benchmark, section7_tco.run)
    save("section7_tco.txt", section7_tco.render(result))
    assert result.within_paper_band
