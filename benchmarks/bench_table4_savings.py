"""Benchmark: Table IV / Table VIII — per-core carbon savings."""

from repro.experiments import table4_savings

from conftest import run_once


def test_table4_savings(benchmark, save):
    result = run_once(benchmark, table4_savings.run)
    save("table4_savings.txt", table4_savings.render(result))
    assert result.max_abs_deviation_points <= 1.5
