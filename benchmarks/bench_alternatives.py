"""Benchmark: Section VII-B — equivalent alternative strategies."""

from repro.experiments import section7_alternatives

from conftest import run_once


def test_alternatives(benchmark, save):
    result = run_once(benchmark, section7_alternatives.run)
    save(
        "section7_alternatives.txt",
        section7_alternatives.render(result),
    )
    assert result.report.lifetime_years > 6
    assert 0.2 < result.report.efficiency_improvement < 0.4
