"""Benchmark: closure-keyed results catalog + incremental sweep driver.

Two gates, mirroring the fleet bench:

- ``test_catalog_incremental_cone`` always runs (the CI smoke): it
  builds a small fixed sweep, mutates exactly one trace input (the
  synthetic seed), and asserts the recompute set is exactly the
  invalidated cone — checked against the golden cone digest in
  ``benchmarks/golden_catalog_cone.json`` (refresh with
  ``REPRO_UPDATE_GOLDEN=1``) — and that every recomputed entry is
  byte-identical to a from-scratch sweep of the mutated inputs.
- ``test_catalog_warm_speedup`` runs a larger grid cold, then warm, and
  asserts the warm repeat (pure catalog reads) is >= 10x faster than
  cold compute, writing the machine-readable
  ``benchmarks/out/BENCH_catalog.json`` artifact (schema checked by
  :func:`validate_bench_catalog`).

Scale knobs (``--smoke`` sets small values):

- ``REPRO_BENCH_CATALOG_VMS``: synthetic mean concurrent VMs
  (default 150).
- ``REPRO_BENCH_CATALOG_DAYS``: synthetic trace window (default 2.0).
"""

import dataclasses
import json
import os
import pathlib
import sys
import time

from repro.catalog import ResultsCatalog, SweepSpec, run_sweep
from repro.core.provenance import ProvenanceLog

GOLDEN_PATH = pathlib.Path(__file__).parent / "golden_catalog_cone.json"

BENCH_SCHEMA = "repro-bench-catalog/1"

DEFAULT_VMS = 150
DEFAULT_DAYS = 2.0

#: The fixed cone-gate grid: small, fast, and independent of the scale
#: knobs so the golden digest never moves with benchmark sizing.
CONE_SPEC = SweepSpec(
    skus=("GreenSKU-Full",),
    adoption_rules=("carbon-aware", "always"),
    buffer_fractions=(0.15,),
    cxl_dimm_counts=(None, 8),
    backends=("synthetic",),
    seed=7,
    vms=40,
    days=1.0,
)


def _speedup_spec() -> SweepSpec:
    """The warm-speedup grid: 12 points, sized by the scale knobs."""
    return SweepSpec(
        skus=("GreenSKU-Full",),
        adoption_rules=("carbon-aware", "performance-only", "always"),
        buffer_fractions=(0.15, 0.25),
        cxl_dimm_counts=(None, 8),
        backends=("synthetic",),
        seed=7,
        vms=int(os.environ.get("REPRO_BENCH_CATALOG_VMS", DEFAULT_VMS)),
        days=float(os.environ.get("REPRO_BENCH_CATALOG_DAYS", DEFAULT_DAYS)),
    )


def _entry_bytes(catalog, keys):
    """key -> raw on-disk entry bytes (the bit-identity witness)."""
    out = {}
    for key in keys:
        with open(catalog.entry_path(key), "rb") as fh:
            out[key] = fh.read()
    return out


def test_catalog_incremental_cone(save, tmp_path):
    """Mutating one trace input recomputes exactly its cone, bit-identically."""
    catalog = ResultsCatalog(tmp_path / "catalog")
    log = ProvenanceLog(tmp_path / "provenance.jsonl")

    cold = run_sweep(CONE_SPEC, catalog, log)
    assert len(cold.recomputed) == len(cold.points)
    baseline_bytes = _entry_bytes(catalog, cold.live_keys())

    # Unchanged rerun: zero recomputes, zero invalidation, zero byte churn.
    repeat = run_sweep(CONE_SPEC, catalog, log)
    assert repeat.recomputed == []
    assert repeat.invalidation.invalid == ()
    assert len(repeat.warm) == len(cold.points)
    assert _entry_bytes(catalog, repeat.live_keys()) == baseline_bytes

    # Mutate exactly one input: the synthetic trace seed.
    mutated_spec = dataclasses.replace(CONE_SPEC, seed=CONE_SPEC.seed + 1)
    mutated = run_sweep(mutated_spec, catalog, log)
    assert mutated.invalidation.changed_inputs == ("trace/synthetic",)
    expected_cone = tuple(
        sorted([p.artifact_id for p in cold.points] + ["sweep/summary"])
    )
    assert mutated.invalidation.invalid == expected_cone
    assert sorted(mutated.recomputed) == sorted(
        p.artifact_id for p in mutated.points
    )
    cone_digest = mutated.invalidation.cone_digest()

    if os.environ.get("REPRO_UPDATE_GOLDEN", "0") not in ("", "0"):
        GOLDEN_PATH.write_text(
            json.dumps(
                {
                    "changed_inputs": list(
                        mutated.invalidation.changed_inputs
                    ),
                    "invalid": list(mutated.invalidation.invalid),
                    "cone_digest": cone_digest,
                },
                indent=2,
            )
            + "\n"
        )
    golden = json.loads(GOLDEN_PATH.read_text())
    assert cone_digest == golden["cone_digest"], (
        "invalidation cone diverged from the golden "
        f"({cone_digest} != {golden['cone_digest']})"
    )

    # Bit-identity: the incremental recompute must match a from-scratch
    # sweep of the mutated inputs, byte for byte on disk.
    scratch = ResultsCatalog(tmp_path / "scratch")
    scratch_out = run_sweep(
        mutated_spec, scratch, ProvenanceLog(tmp_path / "scratch.jsonl")
    )
    assert mutated.keys == scratch_out.keys
    assert _entry_bytes(catalog, mutated.live_keys()) == _entry_bytes(
        scratch, scratch_out.live_keys()
    )

    # The old seed's entries still exist (closure keys never collide)
    # until gc reclaims them.
    assert set(baseline_bytes) & set(catalog.keys()) == set(baseline_bytes)
    removed = catalog.gc(mutated.live_keys())
    assert removed == len(baseline_bytes)

    save(
        "catalog_cone.txt",
        "\n".join(
            [f"changed inputs: {', '.join(mutated.invalidation.changed_inputs)}"]
            + [f"invalid: {a}" for a in mutated.invalidation.invalid]
            + [f"cone digest: {cone_digest}"]
        ),
    )


def test_catalog_warm_speedup(save, tmp_path):
    """A warm repeat sweep (catalog reads) is >= 10x faster than cold."""
    spec = _speedup_spec()
    catalog = ResultsCatalog(tmp_path / "catalog")
    log = ProvenanceLog(tmp_path / "provenance.jsonl")

    t0 = time.perf_counter()
    cold = run_sweep(spec, catalog, log)
    cold_s = time.perf_counter() - t0
    assert len(cold.recomputed) == len(cold.points)

    t0 = time.perf_counter()
    warm = run_sweep(spec, catalog, log)
    warm_s = time.perf_counter() - t0
    assert warm.recomputed == []
    assert len(warm.warm) == len(cold.points)
    assert warm.summary == cold.summary

    speedup = cold_s / warm_s
    payload = {
        "schema": BENCH_SCHEMA,
        "points": len(cold.points),
        "vms": spec.vms,
        "days": spec.days,
        "cold_s": round(cold_s, 4),
        "warm_s": round(warm_s, 4),
        "speedup": round(speedup, 1),
        "warm_reads": len(warm.warm),
        "recomputed_warm": len(warm.recomputed),
        "catalog_entries": len(catalog.keys()),
        "catalog_bytes": catalog.manifest()["total_bytes"],
    }
    problems = validate_bench_catalog(payload)
    assert not problems, problems
    save("BENCH_catalog.json", json.dumps(payload, indent=2))
    assert speedup >= 10.0, (
        f"warm catalog repeat only {speedup:.1f}x faster than cold compute"
    )


def validate_bench_catalog(manifest) -> list:
    """Schema check for ``BENCH_catalog.json``; returns problem strings."""
    problems = []
    if not isinstance(manifest, dict):
        return [f"manifest is {type(manifest).__name__}, expected dict"]
    if manifest.get("schema") != BENCH_SCHEMA:
        problems.append(f"schema is {manifest.get('schema')!r}")
    for key in ("points", "warm_reads", "catalog_entries", "catalog_bytes"):
        value = manifest.get(key)
        if not isinstance(value, int) or value <= 0:
            problems.append(f"{key} is {value!r}, expected int > 0")
    for key in ("vms", "days", "cold_s", "warm_s", "speedup"):
        value = manifest.get(key)
        if not isinstance(value, (int, float)) or value <= 0:
            problems.append(f"{key} is {value!r}, expected number > 0")
    if manifest.get("recomputed_warm") != 0:
        problems.append(
            f"recomputed_warm is {manifest.get('recomputed_warm')!r}, "
            "expected 0 (a warm repeat must not recompute)"
        )
    speedup = manifest.get("speedup")
    if isinstance(speedup, (int, float)) and speedup < 10.0:
        problems.append(f"speedup {speedup!r} < 10x")
    return problems


def main(argv=None) -> int:
    """Run the bench as a script; ``--smoke`` shrinks the scale knobs."""
    import pytest

    argv = list(sys.argv[1:] if argv is None else argv)
    if "--smoke" in argv:
        argv.remove("--smoke")
        os.environ.setdefault("REPRO_BENCH_CATALOG_VMS", "40")
        os.environ.setdefault("REPRO_BENCH_CATALOG_DAYS", "1.0")
    return pytest.main([__file__, "-q", "-p", "no:cacheprovider"] + argv)


if __name__ == "__main__":
    raise SystemExit(main())
