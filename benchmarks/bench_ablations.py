"""Benchmark: ablations of the design choices DESIGN.md calls out.

Placement heuristic, Fail-In-Place effectiveness, adoption rule, growth
buffer policy, and the reused-DDR4 (CXL) share.
"""

from repro.allocation.traces import TraceParams, generate_trace
from repro.analysis.ablations import (
    adoption_rule_ablation,
    buffer_policy_ablation,
    cxl_fraction_sweep,
    fip_sweep,
    placement_policy_ablation,
)
from repro.core.tables import render_table

from conftest import run_once


def _trace():
    return generate_trace(
        seed=21, params=TraceParams(duration_days=7, mean_concurrent_vms=400)
    )


def test_ablation_placement(benchmark, save):
    results = run_once(benchmark, lambda: placement_policy_ablation(_trace()))
    table = render_table(
        ["policy", "servers", "core density", "memory density"],
        [
            [r.policy, r.servers_needed, r.mean_core_density,
             r.mean_memory_density]
            for r in results
        ],
        title="Ablation: placement heuristic (production = best-fit)",
    )
    save("ablation_placement.txt", table)
    by_policy = {r.policy: r for r in results}
    assert (
        by_policy["best-fit"].servers_needed
        <= by_policy["worst-fit"].servers_needed
    )


def test_ablation_fip(benchmark, save):
    results = run_once(benchmark, fip_sweep)
    table = render_table(
        ["FIP effectiveness", "baseline repairs/100", "GreenSKU repairs/100",
         "GreenSKU premium"],
        [
            [r.effectiveness, r.baseline_repair_rate, r.greensku_repair_rate,
             r.greensku_overhead]
            for r in results
        ],
        title="Ablation: Fail-In-Place effectiveness (paper assumes 0.75)",
    )
    save("ablation_fip.txt", table)
    assert results[-1].greensku_overhead == 0.0


def test_ablation_adoption(benchmark, save):
    results = run_once(benchmark, lambda: adoption_rule_ablation(_trace()))
    table = render_table(
        ["rule", "cluster savings", "green servers", "baseline servers"],
        [
            [r.rule, f"{r.cluster_savings:.1%}", r.green_servers,
             r.baseline_servers]
            for r in results
        ],
        title=(
            "Ablation: adoption rule ('always' ignores SLOs — its savings "
            "are not like-for-like)"
        ),
    )
    save("ablation_adoption.txt", table)
    by_rule = {r.rule: r for r in results}
    assert by_rule["carbon-aware"].cluster_savings > 0


def test_ablation_buffer(benchmark, save):
    results = run_once(benchmark, lambda: buffer_policy_ablation(20, 40))
    table = render_table(
        ["policy", "baseline buffer", "green buffer", "buffer kgCO2e"],
        [
            [r.policy, r.baseline_buffer_servers, r.green_buffer_servers,
             r.buffer_carbon_kg]
            for r in results
        ],
        title="Ablation: growth-buffer policy",
    )
    save("ablation_buffer.txt", table)
    single, dual = results
    assert single.buffer_carbon_kg >= dual.buffer_carbon_kg


def test_ablation_cxl_fraction(benchmark, save):
    results = run_once(benchmark, cxl_fraction_sweep)
    table = render_table(
        ["CXL DIMMs", "CXL fraction", "kgCO2e/core", "savings vs baseline"],
        [
            [r.cxl_dimms, r.cxl_fraction, r.total_per_core,
             f"{r.savings_vs_baseline:.1%}"]
            for r in results
        ],
        title="Ablation: share of memory behind reused CXL DDR4",
    )
    save("ablation_cxl_fraction.txt", table)
    savings = [r.savings_vs_baseline for r in results]
    assert savings == sorted(savings)


def test_ablation_lifetime_segregation(benchmark, save):
    from repro.allocation.lifetimes import (
        segregation_study,
        stranded_capacity_fraction,
    )

    trace = _trace()

    def run():
        return (
            segregation_study(trace),
            stranded_capacity_fraction(trace),
        )

    outcome, stranded = run_once(benchmark, run)
    text = "\n".join(
        [
            "Ablation: lifetime-aware placement (Barbalho et al.)",
            f"  interleaved right-size: {outcome.interleaved_servers} "
            "servers",
            f"  segregated right-size:  {outcome.segregated_servers} "
            f"(anchor {outcome.anchor_servers} + churn "
            f"{outcome.churn_servers})",
            f"  capacity stranded on servers pinned by long-lived VMs: "
            f"{stranded:.1%}",
        ]
    )
    save("ablation_lifetime_segregation.txt", text)
    assert 0 <= stranded <= 1
