"""Benchmark: Fig. 2 — DIMM failure rates over 7 deployment years."""

from repro.experiments import fig2_failures

from conftest import run_once


def test_fig2_failures(benchmark, save):
    result = run_once(benchmark, fig2_failures.run)
    save("fig2_failures.txt", fig2_failures.render(result))
    save("fig2_failures.csv", fig2_failures.to_csv(result))
    assert abs(result.steady_slope_per_month) < 0.005
