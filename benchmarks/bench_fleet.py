"""Benchmark: fleet-scale allocation replay (streaming SoA vs row path).

Two gates mirror the queueing bench:

- ``test_fleet_golden_digest`` always runs (the CI smoke): it replays a
  small fixed fleet through the SoA + streaming-columnar path and fails
  on any fleet/per-cluster digest mismatch against
  ``benchmarks/golden_fleet_digests.json`` (generated from the
  ``reference`` engine; refresh with ``REPRO_UPDATE_GOLDEN=1``).
- ``test_fleet_scale_speedup`` replays the full fleet — by default 100
  clusters totalling >= 10^6 VMs — on the SoA + streaming path, then
  walks a *scale trajectory* of single-cluster samples (by default
  1/4x, 1/2x, 1x, and 1.6x of the speedup scale — the largest ~3100
  servers, well past the old single 25k-VM sample), timing each on both
  the row-based reference path and the streaming path, asserting
  bit-identical ``outcome_digest``s at every scale, and writes the
  machine-readable ``benchmarks/out/BENCH_fleet.json`` artifact —
  including the per-scale ``scale_trajectory`` — (schema checked by
  :func:`validate_bench_fleet`, peak RSS included, full-fleet
  ``VmRequest`` rows never materialized).

Scale knobs (CI smoke sets small values; ``--smoke`` does it for you):

- ``REPRO_BENCH_FLEET_CLUSTERS``: fleet size (default 100).
- ``REPRO_BENCH_FLEET_VMS``: mean concurrent VMs per cluster (default
  5200, about 11k VM arrivals per 3-day trace).
- ``REPRO_BENCH_FLEET_SPEEDUP_VMS``: mean concurrent VMs of the
  largest speedup-sample cluster (default 25000 — ~1900 servers, the
  scale where the vectorized scan's advantage over the Python row walk
  is architectural rather than incidental; the trajectory extends 1.6x
  beyond it).
- ``REPRO_BENCH_FLEET_TRAJECTORY``: explicit comma-separated
  concurrent-VM scales for the trajectory (overrides the derived
  1/4x,1/2x,1x,1.6x ladder).

The >= 3x in-test floor (real runs clear 5x; see BENCH_fleet.json)
only applies at full scale — tiny smoke clusters are numpy-overhead
bound and measure nothing.
"""

import json
import os
import pathlib
import resource
import sys
import time

from repro.allocation.cluster import (
    ClusterSpec,
    adopt_everything,
    outcome_digest,
    replay_columnar,
    simulate,
)
from repro.allocation.fleet import ClusterTask, FleetSpec, simulate_fleet
from repro.allocation.traces import TraceParams, generate_trace

GOLDEN_PATH = pathlib.Path(__file__).parent / "golden_fleet_digests.json"

BENCH_SCHEMA = "repro-bench-fleet/1"

#: Server-per-concurrent-VM sizing: measured ~5.23 peak cores per unit
#: of ``mean_concurrent_vms`` under the default trace shape, with 20%
#: headroom so the fleet replays without (many) rejections.
_CORES_PER_CONCURRENT = 5.23
_HEADROOM = 1.20

DEFAULT_CLUSTERS = 100
DEFAULT_CONCURRENT = 5200
DEFAULT_SPEEDUP_CONCURRENT = 25000

GOLDEN_CLUSTERS = 4
GOLDEN_CONCURRENT = 150


def _env_int(name: str, default: int) -> int:
    return int(os.environ.get(name, str(default)))


def _trajectory_scales(speedup_concurrent: int) -> list:
    """The concurrent-VM ladder the speedup trajectory samples.

    Derived from the speedup scale (1/4x, 1/2x, 1x, 1.6x) so smoke runs
    shrink with it; ``REPRO_BENCH_FLEET_TRAJECTORY`` pins it exactly.
    """
    env = os.environ.get("REPRO_BENCH_FLEET_TRAJECTORY")
    if env:
        scales = [int(part) for part in env.split(",") if part.strip()]
    else:
        scales = [
            max(speedup_concurrent // 4, 100),
            max(speedup_concurrent // 2, 100),
            speedup_concurrent,
            speedup_concurrent * 8 // 5,
        ]
    return sorted(set(scales))


def _sample_point(mean_concurrent: int) -> dict:
    """Time one cluster at ``mean_concurrent`` on both replay paths."""
    params = TraceParams(
        duration_days=3.0, mean_concurrent_vms=mean_concurrent
    )
    cluster = _sized_cluster(mean_concurrent)
    streaming_trace = generate_trace(11, params, name="speedup-sample")
    t0 = time.perf_counter()
    streaming = replay_columnar(
        streaming_trace, cluster, adopt_everything, engine="soa"
    )
    streaming_s = time.perf_counter() - t0
    row_trace = generate_trace(11, params, name="speedup-sample")
    t0 = time.perf_counter()
    row = simulate(row_trace, cluster, adopt_everything, engine="reference")
    row_s = time.perf_counter() - t0
    return {
        "vms_concurrent": mean_concurrent,
        "vms": int(streaming_trace.columns.n),
        "servers": cluster.total_servers,
        "row_reference_s": round(row_s, 3),
        "soa_streaming_s": round(streaming_s, 3),
        "speedup": round(row_s / streaming_s, 2),
        "bit_identical": outcome_digest(streaming) == outcome_digest(row),
    }


def _sized_cluster(mean_concurrent: int):
    """A mixed baseline+GreenSKU cluster sized for ``mean_concurrent``."""
    from repro.hardware.sku import baseline_gen3, greensku_full

    g3 = baseline_gen3()
    total = max(
        int(mean_concurrent * _CORES_PER_CONCURRENT / g3.cores * _HEADROOM),
        4,
    )
    green = total // 3
    return ClusterSpec.of((g3, total - green), (greensku_full(), green))


def _fleet_spec(clusters: int, mean_concurrent: int) -> FleetSpec:
    """A deterministic heterogeneous fleet: per-cluster jittered sizes."""
    tasks = []
    for i in range(clusters):
        # +-10% deterministic jitter so clusters differ without RNG.
        conc = int(mean_concurrent * (0.9 + 0.2 * (i % 5) / 4.0))
        tasks.append(
            ClusterTask(
                name=f"cluster-{i:03d}",
                seed=1000 + i,
                params=TraceParams(
                    duration_days=3.0, mean_concurrent_vms=conc
                ),
                cluster=_sized_cluster(conc),
            )
        )
    return FleetSpec(clusters=tuple(tasks))


def test_fleet_golden_digest(save):
    """SoA+streaming fleet digests match the reference-engine goldens."""
    spec = _fleet_spec(GOLDEN_CLUSTERS, GOLDEN_CONCURRENT)
    outcome = simulate_fleet(spec, adopt_everything, engine="soa")
    digests = {
        "fleet": outcome.digest(),
        "clusters": {
            name: digest for name, digest in outcome.cluster_digests()
        },
    }
    if os.environ.get("REPRO_UPDATE_GOLDEN", "0") not in ("", "0"):
        reference = simulate_fleet(spec, adopt_everything, engine="reference")
        GOLDEN_PATH.write_text(
            json.dumps(
                {
                    "fleet": reference.digest(),
                    "clusters": {
                        name: digest
                        for name, digest in reference.cluster_digests()
                    },
                },
                indent=2,
            )
            + "\n"
        )
    golden = json.loads(GOLDEN_PATH.read_text())
    assert digests == golden, (
        "SoA+streaming fleet digests diverged from the reference-engine "
        "goldens"
    )
    save(
        "fleet_digests.txt",
        "\n".join(
            [f"fleet: {digests['fleet']}"]
            + [
                f"{name}: {digest}"
                for name, digest in sorted(digests["clusters"].items())
            ]
        ),
    )


def test_fleet_scale_speedup(save):
    """Full-fleet streaming replay + row-vs-streaming speedup sample."""
    clusters = _env_int("REPRO_BENCH_FLEET_CLUSTERS", DEFAULT_CLUSTERS)
    concurrent = _env_int("REPRO_BENCH_FLEET_VMS", DEFAULT_CONCURRENT)
    speedup_concurrent = _env_int(
        "REPRO_BENCH_FLEET_SPEEDUP_VMS", DEFAULT_SPEEDUP_CONCURRENT
    )
    full_scale = (
        clusters >= DEFAULT_CLUSTERS
        and concurrent >= DEFAULT_CONCURRENT
        and speedup_concurrent >= 20000
    )

    # -- the fleet itself: streaming SoA only, rows never materialized.
    spec = _fleet_spec(clusters, concurrent)
    t0 = time.perf_counter()
    outcome = simulate_fleet(spec, adopt_everything, engine="soa")
    fleet_s = time.perf_counter() - t0
    total_vms = outcome.placed_vms + outcome.rejected_vms
    if full_scale:
        assert clusters == 100 and total_vms >= 1_000_000, (
            clusters,
            total_vms,
        )

    # -- rows-never-materialized: the streaming path must leave the
    #    trace's lazy row view unbuilt (the property the memory model
    #    rests on; fleet workers replay exactly this code path).
    probe_task = spec.clusters[0]
    probe_trace = generate_trace(
        probe_task.seed, probe_task.params, name=probe_task.name
    )
    assert probe_trace._rows is None
    replay_columnar(
        probe_trace, probe_task.cluster, adopt_everything, engine="soa"
    )
    rows_materialized = probe_trace._rows is not None
    assert not rows_materialized, (
        "streaming replay materialized VmRequest rows"
    )

    # -- speedup trajectory: row vs streaming at increasing cluster
    #    scales, bit-identical at every rung; the largest rung is the
    #    headline speedup sample.
    trajectory = [
        _sample_point(scale)
        for scale in _trajectory_scales(speedup_concurrent)
    ]
    sample = trajectory[-1]
    bit_identical = all(point["bit_identical"] for point in trajectory)
    speedup = sample["speedup"]

    peak_rss_mb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0
    payload = {
        "schema": BENCH_SCHEMA,
        "clusters": clusters,
        "total_vms": total_vms,
        "total_servers": spec.total_servers,
        "fleet_s": round(fleet_s, 2),
        "fleet_digest": outcome.digest(),
        "full_scale": full_scale,
        "rows_materialized": rows_materialized,
        "peak_rss_mb": round(peak_rss_mb, 1),
        "speedup_sample": {
            key: sample[key]
            for key in (
                "vms",
                "servers",
                "row_reference_s",
                "soa_streaming_s",
                "speedup",
                "bit_identical",
            )
        },
        "scale_trajectory": trajectory,
    }
    problems = validate_bench_fleet(payload)
    assert not problems, problems
    save("BENCH_fleet.json", json.dumps(payload, indent=2))
    assert bit_identical, (
        "SoA+streaming sample diverged from the row-based reference path"
    )
    if full_scale:
        assert speedup >= 3.0, f"fleet speedup {speedup:.1f}x < 3x"


def validate_bench_fleet(manifest) -> list:
    """Schema check for ``BENCH_fleet.json``; returns problem strings."""
    problems = []
    if not isinstance(manifest, dict):
        return [f"manifest is {type(manifest).__name__}, expected dict"]
    if manifest.get("schema") != BENCH_SCHEMA:
        problems.append(f"schema is {manifest.get('schema')!r}")
    for key in ("clusters", "total_vms", "total_servers"):
        value = manifest.get(key)
        if not isinstance(value, int) or value <= 0:
            problems.append(f"{key} is {value!r}, expected int > 0")
    for key in ("fleet_s", "peak_rss_mb"):
        value = manifest.get(key)
        if not isinstance(value, (int, float)) or value <= 0:
            problems.append(f"{key} is {value!r}, expected number > 0")
    digest = manifest.get("fleet_digest")
    if not isinstance(digest, str) or len(digest) != 64:
        problems.append(f"fleet_digest is {digest!r}, expected sha256 hex")
    if not isinstance(manifest.get("full_scale"), bool):
        problems.append("full_scale missing or not a bool")
    if manifest.get("rows_materialized") is not False:
        problems.append(
            f"rows_materialized is {manifest.get('rows_materialized')!r}, "
            "expected False"
        )
    sample = manifest.get("speedup_sample")
    if not isinstance(sample, dict):
        return problems + ["speedup_sample missing or not a dict"]
    for key in ("vms", "servers"):
        value = sample.get(key)
        if not isinstance(value, int) or value <= 0:
            problems.append(
                f"speedup_sample.{key} is {value!r}, expected int > 0"
            )
    for key in ("row_reference_s", "soa_streaming_s", "speedup"):
        value = sample.get(key)
        if not isinstance(value, (int, float)) or value <= 0:
            problems.append(
                f"speedup_sample.{key} is {value!r}, expected number > 0"
            )
    if not isinstance(sample.get("bit_identical"), bool):
        problems.append("speedup_sample.bit_identical missing or not a bool")
    elif not sample["bit_identical"]:
        problems.append("speedup_sample.bit_identical is False")
    trajectory = manifest.get("scale_trajectory")
    if not isinstance(trajectory, list) or not trajectory:
        return problems + ["scale_trajectory missing or empty"]
    previous_servers = 0
    for i, point in enumerate(trajectory):
        if not isinstance(point, dict):
            problems.append(f"scale_trajectory[{i}] is not a dict")
            continue
        for key in ("vms_concurrent", "vms", "servers"):
            value = point.get(key)
            if not isinstance(value, int) or value <= 0:
                problems.append(
                    f"scale_trajectory[{i}].{key} is {value!r}, "
                    "expected int > 0"
                )
        if point.get("bit_identical") is not True:
            problems.append(f"scale_trajectory[{i}] is not bit-identical")
        servers = point.get("servers")
        if isinstance(servers, int):
            if servers < previous_servers:
                problems.append(
                    "scale_trajectory server counts are not non-decreasing"
                )
            previous_servers = servers
    return problems


def main(argv=None) -> int:
    """Run the bench as a script; ``--smoke`` shrinks every scale knob."""
    import pytest

    argv = list(sys.argv[1:] if argv is None else argv)
    if "--smoke" in argv:
        argv.remove("--smoke")
        os.environ.setdefault("REPRO_BENCH_FLEET_CLUSTERS", "6")
        os.environ.setdefault("REPRO_BENCH_FLEET_VMS", "300")
        os.environ.setdefault("REPRO_BENCH_FLEET_SPEEDUP_VMS", "1500")
    return pytest.main([__file__, "-q", "-p", "no:cacheprovider"] + argv)


if __name__ == "__main__":
    raise SystemExit(main())
