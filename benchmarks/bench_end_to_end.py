"""Benchmark: the headline 26% -> cluster -> DC savings chain."""

from repro.experiments import end_to_end

from conftest import run_once


def test_end_to_end(benchmark, save):
    result = run_once(
        benchmark, lambda: end_to_end.run(mean_concurrent_vms=1000)
    )
    save("end_to_end.txt", end_to_end.render(result))
    assert result.per_core_savings > result.cluster_savings > result.dc_savings
    assert result.dc_savings > 0
