"""Benchmark: Fig. 9 — packing-density CDFs over 35 production traces.

``REPRO_BENCH_TRACES`` scales the suite down for smoke runs (the CI
benchmark step uses 4 traces); the committed artifact comes from the
full 35-trace run.
"""

import os

from repro.experiments import fig9_packing

from conftest import run_once

TRACE_COUNT = int(os.environ.get("REPRO_BENCH_TRACES", "35"))


def test_fig9_packing(benchmark, save, execution_stats):
    result = run_once(
        benchmark,
        lambda: fig9_packing.run(
            trace_count=TRACE_COUNT, mean_concurrent_vms=250
        ),
    )
    assert len(result.baseline_points) == TRACE_COUNT
    assert all(
        0 < p.mean_core_density <= 1
        for p in result.baseline_points + result.green_points
    )
    if TRACE_COUNT < 35:
        return  # smoke scale: median comparisons need the full suite
    save("fig9_packing.txt", fig9_packing.render(result))
    save("fig9_packing.csv", fig9_packing.to_csv(result))
    save("fig9_packing.stats.txt", execution_stats())
    s = result.summary()
    # The paper's tradeoff: GreenSKU-Full packs memory better, cores worse.
    assert s["green_memory_median"] > s["baseline_memory_median"]
    assert s["green_core_median"] < s["baseline_core_median"]
