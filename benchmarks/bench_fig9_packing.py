"""Benchmark: Fig. 9 — packing-density CDFs over 35 production traces."""

from repro.experiments import fig9_packing

from conftest import run_once


def test_fig9_packing(benchmark, save, execution_stats):
    result = run_once(
        benchmark,
        lambda: fig9_packing.run(trace_count=35, mean_concurrent_vms=250),
    )
    save("fig9_packing.txt", fig9_packing.render(result))
    save("fig9_packing.csv", fig9_packing.to_csv(result))
    save("fig9_packing.stats.txt", execution_stats())
    s = result.summary()
    # The paper's tradeoff: GreenSKU-Full packs memory better, cores worse.
    assert s["green_memory_median"] > s["baseline_memory_median"]
    assert s["green_core_median"] < s["baseline_core_median"]
