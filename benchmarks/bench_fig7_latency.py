"""Benchmark: Fig. 7 — tail latency vs load per application class."""

from repro.experiments import fig7_latency

from conftest import run_once


def test_fig7_latency(benchmark, save):
    panels = run_once(benchmark, fig7_latency.run)
    save("fig7_latency.txt", fig7_latency.render(panels))
    save("fig7_latency.csv", fig7_latency.to_csv(panels))
    by_name = {p.app_name: p for p in panels}
    assert not by_name["Masstree"].meets_slo
    assert by_name["Xapian"].green_cores_needed == 12
    assert by_name["Nginx"].green_cores_needed == 10
