"""Benchmark: carbon-aware vs blind placement on the diurnal scenario.

Two gates, mirroring the fleet bench:

- ``test_carbon_golden_digest`` always runs (the CI smoke): it replays
  the divergent two-generation scenario (gen2 + gen3 baselines + a
  GreenSKU pool, where blind generation-routing and carbon-aware
  watts-per-core tiering genuinely disagree) under both policies across
  every engine × replay driver, asserts each policy collapses to a
  single outcome digest and a single exact operational-kg value, and
  pins both against ``benchmarks/golden_carbon_digests.json`` —
  including a *nonzero* operational-carbon delta.  Refresh with
  ``REPRO_UPDATE_GOLDEN=1``.
- ``test_carbon_scale_overhead`` times the blind and carbon-aware
  replays at ``REPRO_BENCH_CARBON_VMS`` concurrent VMs on the SoA
  streaming path and writes ``benchmarks/out/BENCH_carbon_aware.json``
  (schema checked by :func:`validate_bench_carbon_aware`).

``--smoke`` shrinks the scale knob for CI.
"""

import json
import os
import pathlib
import sys
import time

from repro.allocation.cluster import (
    ClusterSpec,
    ENGINES,
    adopt_everything,
    outcome_digest,
    replay_columnar,
    simulate,
)
from repro.allocation.traces import TraceParams, generate_trace
from repro.carbon.grid import CarbonAccountant, carbon_aware_policy, diurnal_signal
from repro.hardware.sku import baseline_gen2, baseline_gen3, greensku_full

GOLDEN_PATH = pathlib.Path(__file__).parent / "golden_carbon_digests.json"

BENCH_SCHEMA = "repro-bench-carbon-aware/1"

GOLDEN_SEED = 7
GOLDEN_CONCURRENT = 150
GOLDEN_DAYS = 2.0

DEFAULT_CONCURRENT = 1200


def _env_int(name: str, default: int) -> int:
    return int(os.environ.get(name, str(default)))


def _scenario_cluster(mean_concurrent: int) -> ClusterSpec:
    """The divergent scenario, scaled: equal gen2/gen3 pools + green.

    Two baseline generations with different marginal watts-per-core
    (gen2 4.216 vs gen3 4.179) are what let the carbon-aware tiers
    disagree with blind generation routing; at the golden scale this is
    the verified 10 + 10 + 6 cluster.
    """
    n = max(4, round(mean_concurrent / 15))
    green = max(2, n * 6 // 10)
    return ClusterSpec.of(
        (baseline_gen2(), n),
        (baseline_gen3(), n),
        (greensku_full(), green),
    )


def _replay(policy_aware: bool, engine: str, driver, mean_concurrent: int):
    """One (policy, engine, driver) replay; returns (digest, exact kg)."""
    params = TraceParams(
        duration_days=GOLDEN_DAYS, mean_concurrent_vms=mean_concurrent
    )
    trace = generate_trace(GOLDEN_SEED, params, name="carbon-scenario")
    cluster = _scenario_cluster(mean_concurrent)
    signal = diurnal_signal()
    accountant = CarbonAccountant(signal)
    placement = carbon_aware_policy(signal) if policy_aware else None
    if driver == "row":
        outcome = simulate(
            trace, cluster, adoption=adopt_everything, engine=engine,
            placement=placement, accountant=accountant,
        )
    else:
        outcome = replay_columnar(
            trace, cluster, adopt_everything, engine=engine,
            chunk_events=driver, placement=placement, accountant=accountant,
        )
    return outcome_digest(outcome), outcome.operational.total_kg


def _policy_identity(policy_aware: bool) -> dict:
    """Replay one policy across engines × drivers; must collapse to one."""
    digests, kgs = set(), set()
    for engine in ENGINES:
        for driver in ("row", 64, 4096):
            digest, kg = _replay(
                policy_aware, engine, driver, GOLDEN_CONCURRENT
            )
            digests.add(digest)
            kgs.add(kg)
    assert len(digests) == 1, (
        f"policy {'aware' if policy_aware else 'blind'} diverged across "
        f"engines/drivers: {sorted(digests)}"
    )
    assert len(kgs) == 1, sorted(kgs)
    return {"digest": digests.pop(), "kg": kgs.pop()}


def test_carbon_golden_digest(save):
    """Both policies are engine-invariant and match the pinned goldens."""
    blind = _policy_identity(policy_aware=False)
    aware = _policy_identity(policy_aware=True)
    current = {
        "blind": blind,
        "aware": aware,
        "delta_kg": blind["kg"] - aware["kg"],
    }
    if os.environ.get("REPRO_UPDATE_GOLDEN", "0") not in ("", "0"):
        GOLDEN_PATH.write_text(json.dumps(current, indent=2) + "\n")
    golden = json.loads(GOLDEN_PATH.read_text())
    assert current == golden, (
        "carbon-aware scenario diverged from golden_carbon_digests.json"
    )
    assert aware["digest"] != blind["digest"], (
        "carbon-aware placement collapsed onto the blind outcome"
    )
    assert current["delta_kg"] != 0.0, (
        "diurnal benchmark scenario produced a zero operational delta"
    )
    save(
        "carbon_digests.txt",
        "\n".join(
            [
                f"blind: {blind['digest']} ({blind['kg']!r} kg)",
                f"aware: {aware['digest']} ({aware['kg']!r} kg)",
                f"delta: {current['delta_kg']!r} kg",
            ]
        ),
    )


def test_carbon_scale_overhead(save):
    """Time blind vs carbon-aware streaming replays at bench scale."""
    concurrent = _env_int("REPRO_BENCH_CARBON_VMS", DEFAULT_CONCURRENT)
    params = TraceParams(
        duration_days=GOLDEN_DAYS, mean_concurrent_vms=concurrent
    )
    cluster = _scenario_cluster(concurrent)
    signal = diurnal_signal()

    trace = generate_trace(GOLDEN_SEED, params, name="carbon-scenario")
    acct = CarbonAccountant(signal)
    t0 = time.perf_counter()
    blind = replay_columnar(
        trace, cluster, adopt_everything, engine="soa", accountant=acct
    )
    blind_s = time.perf_counter() - t0

    trace = generate_trace(GOLDEN_SEED, params, name="carbon-scenario")
    acct = CarbonAccountant(signal)
    t0 = time.perf_counter()
    aware = replay_columnar(
        trace, cluster, adopt_everything, engine="soa",
        placement=carbon_aware_policy(signal), accountant=acct,
    )
    aware_s = time.perf_counter() - t0

    blind_kg = blind.operational.total_kg
    aware_kg = aware.operational.total_kg
    payload = {
        "schema": BENCH_SCHEMA,
        "vms_concurrent": concurrent,
        "vms": int(trace.columns.n),
        "servers": cluster.total_servers,
        "blind_s": round(blind_s, 3),
        "aware_s": round(aware_s, 3),
        "overhead": round(aware_s / blind_s, 2),
        "blind_kg": blind_kg,
        "aware_kg": aware_kg,
        "delta_kg": blind_kg - aware_kg,
        "delta_fraction": (
            (blind_kg - aware_kg) / blind_kg if blind_kg else 0.0
        ),
        "blind_digest": outcome_digest(blind),
        "aware_digest": outcome_digest(aware),
    }
    problems = validate_bench_carbon_aware(payload)
    assert not problems, problems
    save("BENCH_carbon_aware.json", json.dumps(payload, indent=2))
    assert payload["blind_digest"] != payload["aware_digest"]


def validate_bench_carbon_aware(manifest) -> list:
    """Schema check for ``BENCH_carbon_aware.json``; returns problems."""
    problems = []
    if not isinstance(manifest, dict):
        return [f"manifest is {type(manifest).__name__}, expected dict"]
    if manifest.get("schema") != BENCH_SCHEMA:
        problems.append(f"schema is {manifest.get('schema')!r}")
    for key in ("vms_concurrent", "vms", "servers"):
        value = manifest.get(key)
        if not isinstance(value, int) or value <= 0:
            problems.append(f"{key} is {value!r}, expected int > 0")
    for key in ("blind_s", "aware_s", "overhead", "blind_kg", "aware_kg"):
        value = manifest.get(key)
        if not isinstance(value, (int, float)) or value <= 0:
            problems.append(f"{key} is {value!r}, expected number > 0")
    for key in ("delta_kg", "delta_fraction"):
        value = manifest.get(key)
        if not isinstance(value, (int, float)):
            problems.append(f"{key} is {value!r}, expected number")
        elif value == 0:
            problems.append(f"{key} is zero — the scenario must diverge")
    for key in ("blind_digest", "aware_digest"):
        value = manifest.get(key)
        if not isinstance(value, str) or len(value) != 64:
            problems.append(f"{key} is {value!r}, expected sha256 hex")
    if manifest.get("blind_digest") == manifest.get("aware_digest"):
        problems.append("blind and aware digests are identical")
    return problems


def main(argv=None) -> int:
    """Run the bench as a script; ``--smoke`` shrinks the scale knob."""
    import pytest

    argv = list(sys.argv[1:] if argv is None else argv)
    if "--smoke" in argv:
        argv.remove("--smoke")
        os.environ.setdefault("REPRO_BENCH_CARBON_VMS", "200")
    return pytest.main([__file__, "-q", "-p", "no:cacheprovider"] + argv)


if __name__ == "__main__":
    raise SystemExit(main())
