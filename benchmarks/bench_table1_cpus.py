"""Benchmark: Table I — baseline CPUs vs the efficient Bergamo."""

from repro.experiments import table1_cpus

from conftest import run_once


def test_table1_cpus(benchmark, save):
    result = run_once(benchmark, table1_cpus.run)
    save("table1_cpus.txt", table1_cpus.render(result))
    assert len(result.rows) == 4
