"""Benchmark: Section VIII runtime systems (autoscaling, DVFS, Pond),
plus the allocation-engine speedup and equivalence suite.

The engine benchmarks compare the indexed placement engine (default)
against the reference full-scan backend:

- ``test_alloc_engine_golden_digest`` always runs (the CI smoke): it
  replays fixed scenarios on the indexed engine and fails on any
  ``SimOutcome`` digest mismatch against ``benchmarks/golden_digests.json``
  (generated from the reference engine; refresh with
  ``REPRO_UPDATE_GOLDEN=1``).
- The speedup measurements re-run the same workloads on the reference
  engine, which takes minutes at the 1k-server scale, so they only run
  when ``REPRO_BENCH_REFERENCE=1``.
"""

import contextlib
import json
import os
import pathlib
import time

import pytest

from repro.allocation.cluster import (
    ENGINE_ENV,
    ClusterSpec,
    adopt_nothing,
    outcome_digest,
    simulate,
)
from repro.allocation.scheduler import PLACEMENT_POLICIES, BestFitScheduler
from repro.allocation.traces import (
    TraceParams,
    generate_trace,
    production_trace_suite,
)
from repro.core import telemetry
from repro.core.tables import render_table
from repro.experiments import fig9_packing
from repro.gsf.sizing import right_size
from repro.hardware.sku import baseline_gen3, greensku_full
from repro.perf.apps import APPLICATIONS, get_app
from repro.perf.autoscale import autoscale
from repro.perf.dvfs import frequency_sweep
from repro.perf.pond import mitigated_share

from repro.allocation.store import TraceStore
from repro.experiments import fig10_memutil

from conftest import run_once

GOLDEN_PATH = pathlib.Path(__file__).parent / "golden_digests.json"
GOLDEN_TRACE_PATH = (
    pathlib.Path(__file__).parent / "golden_trace_digests.json"
)

#: ~1k baseline servers once right-sized (the ISSUE's target scale).
ENGINE_TRACE_PARAMS = TraceParams(duration_days=3, mean_concurrent_vms=16000)


def _reference_timing_enabled() -> bool:
    return os.environ.get("REPRO_BENCH_REFERENCE", "0") not in (
        "", "0", "false", "no",
    )


@contextlib.contextmanager
def _engine(name):
    """Pin ``REPRO_ALLOC_ENGINE`` for code paths without an engine arg."""
    old = os.environ.get(ENGINE_ENV)
    os.environ[ENGINE_ENV] = name
    try:
        yield
    finally:
        if old is None:
            os.environ.pop(ENGINE_ENV, None)
        else:
            os.environ[ENGINE_ENV] = old


def _adopt_all(app_name, generation):
    return 1.0


def _golden_scenarios():
    """Small fixed replays covering policies and mixed clusters."""
    base, green = baseline_gen3(), greensku_full()
    scenarios = []
    for seed in (3, 5):
        trace = generate_trace(
            seed=seed,
            params=TraceParams(duration_days=3, mean_concurrent_vms=120),
        )
        for policy in PLACEMENT_POLICIES:
            scenarios.append(
                (
                    f"seed{seed}-baseline-{policy}",
                    trace,
                    ClusterSpec.of((base, 24)),
                    adopt_nothing,
                    policy,
                )
            )
        scenarios.append(
            (
                f"seed{seed}-mixed-best-fit",
                trace,
                ClusterSpec.of((base, 14), (green, 10)),
                _adopt_all,
                "best-fit",
            )
        )
    return scenarios


def test_alloc_engine_golden_digest(save):
    """Indexed-engine ``SimOutcome`` digests match the reference goldens."""
    digests = {}
    for name, trace, cluster, adoption, policy in _golden_scenarios():
        outcome = simulate(
            trace,
            cluster,
            adoption=adoption,
            scheduler=BestFitScheduler(policy=policy),
            engine="indexed",
        )
        digests[name] = outcome_digest(outcome)
    if os.environ.get("REPRO_UPDATE_GOLDEN", "0") not in ("", "0"):
        # Regenerate from the reference engine — the equivalence oracle.
        reference = {
            name: outcome_digest(
                simulate(
                    trace,
                    cluster,
                    adoption=adoption,
                    scheduler=BestFitScheduler(policy=policy),
                    engine="reference",
                )
            )
            for name, trace, cluster, adoption, policy in _golden_scenarios()
        }
        GOLDEN_PATH.write_text(json.dumps(reference, indent=2) + "\n")
    golden = json.loads(GOLDEN_PATH.read_text())
    assert digests == golden, (
        "indexed-engine SimOutcome digests diverged from the "
        "reference-engine goldens"
    )
    save(
        "alloc_engine_digests.txt",
        "\n".join(f"{name}: {digest}" for name, digest in sorted(digests.items())),
    )


def _golden_trace_specs():
    """Fixed (name, seed, params) trace identities pinned in CI.

    Covers the golden-digest replay traces plus the jittered suite path
    (distinct per-trace params through ``suite_specs``).
    """
    from repro.allocation.traces import suite_specs

    base = TraceParams(duration_days=3, mean_concurrent_vms=120)
    specs = [("seed3", 3, base), ("seed5", 5, base)]
    for seed, params, name in suite_specs(count=4, params=base):
        specs.append((name, seed, params))
    return specs


def test_trace_golden_digest(save):
    """Vectorized trace digests match the reference-generated goldens.

    The digests in ``golden_trace_digests.json`` were produced by the
    scalar reference generator; refresh with ``REPRO_UPDATE_GOLDEN=1``.
    Any divergence means the block-drawing backend changed the VM
    stream — exactly the regression the equivalence contract forbids.
    """
    digests = {
        name: generate_trace(seed, params, method="vectorized").digest()
        for name, seed, params in _golden_trace_specs()
    }
    if os.environ.get("REPRO_UPDATE_GOLDEN", "0") not in ("", "0"):
        reference = {
            name: generate_trace(seed, params, method="reference").digest()
            for name, seed, params in _golden_trace_specs()
        }
        GOLDEN_TRACE_PATH.write_text(json.dumps(reference, indent=2) + "\n")
    golden = json.loads(GOLDEN_TRACE_PATH.read_text())
    assert digests == golden, (
        "vectorized trace digests diverged from the reference-generated "
        "goldens"
    )
    save(
        "trace_pipeline_digests.txt",
        "\n".join(f"{name}: {digest}" for name, digest in sorted(
            digests.items()
        )),
    )


def test_trace_generation_speedup(save):
    """Block-drawn suite generation beats the scalar loop >= 5x.

    Measures the full 35-trace production suite (the input of every
    figure) under both backends.  The committed artifact records the
    measured ratio; the in-test floor is softer (3x) to tolerate noisy
    shared CI runners.
    """
    count = 35
    t0 = time.perf_counter()
    reference = production_trace_suite(count=count, method="reference")
    reference_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    vectorized = production_trace_suite(count=count, method="vectorized")
    vectorized_s = time.perf_counter() - t0

    total_vms = sum(t.vm_count for t in vectorized)
    assert [t.digest() for t in vectorized] == [
        t.digest() for t in reference
    ]
    speedup = reference_s / vectorized_s
    save(
        "trace_pipeline_generation.txt",
        f"production_trace_suite({count}) generation, {total_vms} VMs "
        f"total\n"
        f"  scalar reference loop: {reference_s:.2f}s "
        f"({reference_s / total_vms * 1e6:.1f}us/VM)\n"
        f"  vectorized (block draws): {vectorized_s:.2f}s "
        f"({vectorized_s / total_vms * 1e6:.1f}us/VM)\n"
        f"  speedup: {speedup:.1f}x (target >= 5x)\n"
        f"  digests: bit-identical across all {count} traces",
    )
    assert speedup >= 3.0, f"suite generation speedup {speedup:.1f}x < 3x"


def test_trace_store_round_trip(save, tmp_path):
    """Store loads are much cheaper than regeneration and digest-equal."""
    count = 8
    store = TraceStore(directory=tmp_path / "traces")
    t0 = time.perf_counter()
    generated = production_trace_suite(count=count, store=store)
    generate_s = time.perf_counter() - t0
    assert (store.hits, store.misses) == (0, count)

    t0 = time.perf_counter()
    loaded = production_trace_suite(count=count, store=store)
    load_s = time.perf_counter() - t0
    assert (store.hits, store.misses) == (count, count)
    assert [t.digest() for t in loaded] == [t.digest() for t in generated]

    speedup = generate_s / load_s
    save(
        "trace_pipeline_store.txt",
        f"trace store ({count}-trace suite, "
        f"{sum(t.vm_count for t in loaded)} VMs)\n"
        f"  generate (cold, vectorized): {generate_s * 1000:.0f}ms\n"
        f"  load from .npz store (warm): {load_s * 1000:.0f}ms\n"
        f"  speedup: {speedup:.1f}x; round trip digest-equal",
    )
    assert speedup >= 1.0


def test_trace_pipeline_end_to_end(save):
    """Serial Fig. 9 + Fig. 10 wall-clock, scalar vs columnar pipeline.

    Both runs use the indexed placement engine; only the trace backend
    differs, so the delta is the generation + trace-plumbing share of
    the end-to-end pipelines.  Outcomes must be bit-identical.
    """
    if not _reference_timing_enabled():
        pytest.skip("set REPRO_BENCH_REFERENCE=1 to time the end-to-end runs")

    def pipeline(method):
        traces = production_trace_suite(
            count=8,
            params=TraceParams(mean_concurrent_vms=250),
            method=method,
        )
        fig9 = fig9_packing.run(traces=traces, jobs=1)
        fig10 = fig10_memutil.run(traces=traces, jobs=1)
        return fig9, fig10

    t0 = time.perf_counter()
    ref9, ref10 = pipeline("reference")
    reference_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    vec9, vec10 = pipeline("vectorized")
    vectorized_s = time.perf_counter() - t0

    assert vec9 == ref9
    assert vec10 == ref10
    save(
        "trace_pipeline_fig9_fig10.txt",
        f"serial Fig. 9 + Fig. 10 pipeline (8 traces, 250 mean-concurrent "
        f"VMs, jobs=1, no cache, indexed engine)\n"
        f"  scalar trace pipeline:   {reference_s:.2f}s\n"
        f"  columnar trace pipeline: {vectorized_s:.2f}s\n"
        f"  speedup: {reference_s / vectorized_s:.2f}x end to end; "
        f"Fig. 9/10 results bit-identical",
    )


def test_telemetry_overhead_and_manifest(save):
    """Telemetry stays within its budget on the golden-digest scenarios.

    Replays every golden scenario with telemetry enabled and disabled
    (best-of-N to damp scheduler noise), fails if the instrumented run
    is more than 5% slower (``REPRO_TELEMETRY_OVERHEAD`` overrides the
    budget), and validates the capture against the manifest schema.
    """
    budget = float(os.environ.get("REPRO_TELEMETRY_OVERHEAD", "0.05"))
    scenarios = _golden_scenarios()

    def replay_all():
        for _name, trace, cluster, adoption, policy in scenarios:
            simulate(
                trace,
                cluster,
                adoption=adoption,
                scheduler=BestFitScheduler(policy=policy),
                engine="indexed",
            )

    def best_of(fn, rounds=7):
        best = float("inf")
        for _ in range(rounds):
            t0 = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - t0)
        return best

    replay_all()  # warm caches before either timing
    plain_s = best_of(replay_all)
    with telemetry.capture() as tel:
        instrumented_s = best_of(replay_all)

    manifest = tel.manifest(command="bench-telemetry-overhead")
    problems = telemetry.validate_manifest(manifest)
    assert not problems, problems
    assert manifest["counters"]["alloc.replays"] == 7 * len(scenarios)
    assert manifest["timers"]["alloc.replay"].get("count") == 7 * len(
        scenarios
    )

    overhead = instrumented_s / plain_s - 1.0
    save(
        "telemetry_overhead.txt",
        f"golden-scenario batch ({len(scenarios)} replays, best of 7)\n"
        f"  telemetry off: {plain_s * 1000:.1f}ms\n"
        f"  telemetry on:  {instrumented_s * 1000:.1f}ms\n"
        f"  overhead: {overhead:+.1%} (budget {budget:.0%})",
    )
    assert overhead <= budget, (
        f"telemetry overhead {overhead:.1%} exceeds the {budget:.0%} budget"
    )


def test_right_size_indexed_speedup(benchmark, save):
    """The indexed engine right-sizes a 1k-server trace >= 5x faster."""
    if not _reference_timing_enabled():
        pytest.skip("set REPRO_BENCH_REFERENCE=1 to time the reference scan")
    trace = generate_trace(seed=7, params=ENGINE_TRACE_PARAMS)
    sku = baseline_gen3()

    with _engine("indexed"):
        t0 = time.perf_counter()
        n_indexed = run_once(benchmark, lambda: right_size(trace, sku))
        indexed_s = time.perf_counter() - t0
    with _engine("reference"):
        t0 = time.perf_counter()
        n_reference = right_size(trace, sku)
        reference_s = time.perf_counter() - t0

    assert n_indexed == n_reference
    speedup = reference_s / indexed_s
    save(
        "alloc_engine_rightsize.txt",
        f"right_size, {len(trace.vms)} VMs -> {n_indexed} baseline servers\n"
        f"  reference scan: {reference_s:.2f}s\n"
        f"  indexed engine: {indexed_s:.2f}s\n"
        f"  speedup: {speedup:.1f}x (target >= 5x)",
    )
    assert speedup >= 5.0


def test_fig9_serial_speedup(save):
    """The indexed engine runs the serial Fig. 9 pipeline >= 2x faster.

    Trace generation happens outside the timed region (it is
    engine-independent), and the suite runs at a cluster scale where the
    allocation hot path dominates (~300 servers per sizing probe).  At
    the figure's default 250 mean-concurrent VMs the clusters are ~30
    servers and the scan is not the bottleneck (~1.2x there).
    """
    if not _reference_timing_enabled():
        pytest.skip("set REPRO_BENCH_REFERENCE=1 to time the reference scan")
    traces = production_trace_suite(
        count=6, params=TraceParams(mean_concurrent_vms=2500)
    )

    with _engine("indexed"):
        t0 = time.perf_counter()
        indexed_result = fig9_packing.run(traces=traces, jobs=1)
        indexed_s = time.perf_counter() - t0
    with _engine("reference"):
        t0 = time.perf_counter()
        reference_result = fig9_packing.run(traces=traces, jobs=1)
        reference_s = time.perf_counter() - t0

    assert indexed_result == reference_result
    speedup = reference_s / indexed_s
    save(
        "alloc_engine_fig9.txt",
        f"Fig. 9 serial pipeline (6 traces, 2500 mean-concurrent VMs, "
        f"jobs=1, no cache)\n"
        f"  reference scan: {reference_s:.2f}s\n"
        f"  indexed engine: {indexed_s:.2f}s\n"
        f"  speedup: {speedup:.1f}x (target >= 2x)",
    )
    assert speedup >= 2.0


def test_autoscaler(benchmark, save):
    result = run_once(benchmark, lambda: autoscale(get_app("Xapian")))
    save(
        "runtime_autoscale.txt",
        f"Autoscaling Xapian over 48h diurnal load: "
        f"{result.core_hour_savings:.0%} core-hours returned, "
        f"{result.slo_violation_hours} SLO-violation hours",
    )
    assert result.core_hour_savings > 0.1
    assert result.slo_violation_hours <= 2


def test_dvfs(benchmark, save):
    plans = run_once(
        benchmark, lambda: frequency_sweep(get_app("Nginx"), cores=10)
    )
    table = render_table(
        ["load QPS", "frequency", "power saving", "meets SLO"],
        [
            [f"{p.load_qps:.0f}", f"{p.frequency:.2f}",
             f"{p.power_savings:.0%}", p.meets_slo]
            for p in plans
        ],
        title="DVFS plans across load (Nginx, 10 cores)",
    )
    save("runtime_dvfs.txt", table)
    assert all(p.meets_slo for p in plans)
    assert plans[0].power_savings > plans[-1].power_savings


def test_pond_mitigation(benchmark, save):
    share = run_once(benchmark, lambda: mitigated_share(APPLICATIONS))
    save(
        "runtime_pond.txt",
        f"Pond tiering: {share:.0%} of applications within the 5% CXL "
        "slowdown bound (paper: 98%)",
    )
    assert share >= 0.95
