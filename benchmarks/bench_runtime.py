"""Benchmark: Section VIII runtime systems (autoscaling, DVFS, Pond),
plus the allocation-engine speedup and equivalence suite.

The engine benchmarks compare the indexed placement engine (default)
against the reference full-scan backend:

- ``test_alloc_engine_golden_digest`` always runs (the CI smoke): it
  replays fixed scenarios on the indexed engine and fails on any
  ``SimOutcome`` digest mismatch against ``benchmarks/golden_digests.json``
  (generated from the reference engine; refresh with
  ``REPRO_UPDATE_GOLDEN=1``).
- The speedup measurements re-run the same workloads on the reference
  engine, which takes minutes at the 1k-server scale, so they only run
  when ``REPRO_BENCH_REFERENCE=1``.
"""

import contextlib
import json
import os
import pathlib
import time

import pytest

from repro.allocation.cluster import (
    ENGINE_ENV,
    ClusterSpec,
    adopt_nothing,
    outcome_digest,
    simulate,
)
from repro.allocation.scheduler import PLACEMENT_POLICIES, BestFitScheduler
from repro.allocation.traces import (
    TraceParams,
    generate_trace,
    production_trace_suite,
)
from repro.core import telemetry
from repro.core.tables import render_table
from repro.experiments import fig9_packing
from repro.gsf.sizing import right_size
from repro.hardware.sku import baseline_gen3, greensku_full
from repro.perf.apps import APPLICATIONS, get_app
from repro.perf.autoscale import autoscale
from repro.perf.dvfs import frequency_sweep
from repro.perf.pond import mitigated_share

from conftest import run_once

GOLDEN_PATH = pathlib.Path(__file__).parent / "golden_digests.json"

#: ~1k baseline servers once right-sized (the ISSUE's target scale).
ENGINE_TRACE_PARAMS = TraceParams(duration_days=3, mean_concurrent_vms=16000)


def _reference_timing_enabled() -> bool:
    return os.environ.get("REPRO_BENCH_REFERENCE", "0") not in (
        "", "0", "false", "no",
    )


@contextlib.contextmanager
def _engine(name):
    """Pin ``REPRO_ALLOC_ENGINE`` for code paths without an engine arg."""
    old = os.environ.get(ENGINE_ENV)
    os.environ[ENGINE_ENV] = name
    try:
        yield
    finally:
        if old is None:
            os.environ.pop(ENGINE_ENV, None)
        else:
            os.environ[ENGINE_ENV] = old


def _adopt_all(app_name, generation):
    return 1.0


def _golden_scenarios():
    """Small fixed replays covering policies and mixed clusters."""
    base, green = baseline_gen3(), greensku_full()
    scenarios = []
    for seed in (3, 5):
        trace = generate_trace(
            seed=seed,
            params=TraceParams(duration_days=3, mean_concurrent_vms=120),
        )
        for policy in PLACEMENT_POLICIES:
            scenarios.append(
                (
                    f"seed{seed}-baseline-{policy}",
                    trace,
                    ClusterSpec.of((base, 24)),
                    adopt_nothing,
                    policy,
                )
            )
        scenarios.append(
            (
                f"seed{seed}-mixed-best-fit",
                trace,
                ClusterSpec.of((base, 14), (green, 10)),
                _adopt_all,
                "best-fit",
            )
        )
    return scenarios


def test_alloc_engine_golden_digest(save):
    """Indexed-engine ``SimOutcome`` digests match the reference goldens."""
    digests = {}
    for name, trace, cluster, adoption, policy in _golden_scenarios():
        outcome = simulate(
            trace,
            cluster,
            adoption=adoption,
            scheduler=BestFitScheduler(policy=policy),
            engine="indexed",
        )
        digests[name] = outcome_digest(outcome)
    if os.environ.get("REPRO_UPDATE_GOLDEN", "0") not in ("", "0"):
        # Regenerate from the reference engine — the equivalence oracle.
        reference = {
            name: outcome_digest(
                simulate(
                    trace,
                    cluster,
                    adoption=adoption,
                    scheduler=BestFitScheduler(policy=policy),
                    engine="reference",
                )
            )
            for name, trace, cluster, adoption, policy in _golden_scenarios()
        }
        GOLDEN_PATH.write_text(json.dumps(reference, indent=2) + "\n")
    golden = json.loads(GOLDEN_PATH.read_text())
    assert digests == golden, (
        "indexed-engine SimOutcome digests diverged from the "
        "reference-engine goldens"
    )
    save(
        "alloc_engine_digests.txt",
        "\n".join(f"{name}: {digest}" for name, digest in sorted(digests.items())),
    )


def test_telemetry_overhead_and_manifest(save):
    """Telemetry stays within its budget on the golden-digest scenarios.

    Replays every golden scenario with telemetry enabled and disabled
    (best-of-N to damp scheduler noise), fails if the instrumented run
    is more than 5% slower (``REPRO_TELEMETRY_OVERHEAD`` overrides the
    budget), and validates the capture against the manifest schema.
    """
    budget = float(os.environ.get("REPRO_TELEMETRY_OVERHEAD", "0.05"))
    scenarios = _golden_scenarios()

    def replay_all():
        for _name, trace, cluster, adoption, policy in scenarios:
            simulate(
                trace,
                cluster,
                adoption=adoption,
                scheduler=BestFitScheduler(policy=policy),
                engine="indexed",
            )

    def best_of(fn, rounds=7):
        best = float("inf")
        for _ in range(rounds):
            t0 = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - t0)
        return best

    replay_all()  # warm caches before either timing
    plain_s = best_of(replay_all)
    with telemetry.capture() as tel:
        instrumented_s = best_of(replay_all)

    manifest = tel.manifest(command="bench-telemetry-overhead")
    problems = telemetry.validate_manifest(manifest)
    assert not problems, problems
    assert manifest["counters"]["alloc.replays"] == 7 * len(scenarios)
    assert manifest["timers"]["alloc.replay"].get("count") == 7 * len(
        scenarios
    )

    overhead = instrumented_s / plain_s - 1.0
    save(
        "telemetry_overhead.txt",
        f"golden-scenario batch ({len(scenarios)} replays, best of 7)\n"
        f"  telemetry off: {plain_s * 1000:.1f}ms\n"
        f"  telemetry on:  {instrumented_s * 1000:.1f}ms\n"
        f"  overhead: {overhead:+.1%} (budget {budget:.0%})",
    )
    assert overhead <= budget, (
        f"telemetry overhead {overhead:.1%} exceeds the {budget:.0%} budget"
    )


def test_right_size_indexed_speedup(benchmark, save):
    """The indexed engine right-sizes a 1k-server trace >= 5x faster."""
    if not _reference_timing_enabled():
        pytest.skip("set REPRO_BENCH_REFERENCE=1 to time the reference scan")
    trace = generate_trace(seed=7, params=ENGINE_TRACE_PARAMS)
    sku = baseline_gen3()

    with _engine("indexed"):
        t0 = time.perf_counter()
        n_indexed = run_once(benchmark, lambda: right_size(trace, sku))
        indexed_s = time.perf_counter() - t0
    with _engine("reference"):
        t0 = time.perf_counter()
        n_reference = right_size(trace, sku)
        reference_s = time.perf_counter() - t0

    assert n_indexed == n_reference
    speedup = reference_s / indexed_s
    save(
        "alloc_engine_rightsize.txt",
        f"right_size, {len(trace.vms)} VMs -> {n_indexed} baseline servers\n"
        f"  reference scan: {reference_s:.2f}s\n"
        f"  indexed engine: {indexed_s:.2f}s\n"
        f"  speedup: {speedup:.1f}x (target >= 5x)",
    )
    assert speedup >= 5.0


def test_fig9_serial_speedup(save):
    """The indexed engine runs the serial Fig. 9 pipeline >= 2x faster.

    Trace generation happens outside the timed region (it is
    engine-independent), and the suite runs at a cluster scale where the
    allocation hot path dominates (~300 servers per sizing probe).  At
    the figure's default 250 mean-concurrent VMs the clusters are ~30
    servers and the scan is not the bottleneck (~1.2x there).
    """
    if not _reference_timing_enabled():
        pytest.skip("set REPRO_BENCH_REFERENCE=1 to time the reference scan")
    traces = production_trace_suite(
        count=6, params=TraceParams(mean_concurrent_vms=2500)
    )

    with _engine("indexed"):
        t0 = time.perf_counter()
        indexed_result = fig9_packing.run(traces=traces, jobs=1)
        indexed_s = time.perf_counter() - t0
    with _engine("reference"):
        t0 = time.perf_counter()
        reference_result = fig9_packing.run(traces=traces, jobs=1)
        reference_s = time.perf_counter() - t0

    assert indexed_result == reference_result
    speedup = reference_s / indexed_s
    save(
        "alloc_engine_fig9.txt",
        f"Fig. 9 serial pipeline (6 traces, 2500 mean-concurrent VMs, "
        f"jobs=1, no cache)\n"
        f"  reference scan: {reference_s:.2f}s\n"
        f"  indexed engine: {indexed_s:.2f}s\n"
        f"  speedup: {speedup:.1f}x (target >= 2x)",
    )
    assert speedup >= 2.0


def test_autoscaler(benchmark, save):
    result = run_once(benchmark, lambda: autoscale(get_app("Xapian")))
    save(
        "runtime_autoscale.txt",
        f"Autoscaling Xapian over 48h diurnal load: "
        f"{result.core_hour_savings:.0%} core-hours returned, "
        f"{result.slo_violation_hours} SLO-violation hours",
    )
    assert result.core_hour_savings > 0.1
    assert result.slo_violation_hours <= 2


def test_dvfs(benchmark, save):
    plans = run_once(
        benchmark, lambda: frequency_sweep(get_app("Nginx"), cores=10)
    )
    table = render_table(
        ["load QPS", "frequency", "power saving", "meets SLO"],
        [
            [f"{p.load_qps:.0f}", f"{p.frequency:.2f}",
             f"{p.power_savings:.0%}", p.meets_slo]
            for p in plans
        ],
        title="DVFS plans across load (Nginx, 10 cores)",
    )
    save("runtime_dvfs.txt", table)
    assert all(p.meets_slo for p in plans)
    assert plans[0].power_savings > plans[-1].power_savings


def test_pond_mitigation(benchmark, save):
    share = run_once(benchmark, lambda: mitigated_share(APPLICATIONS))
    save(
        "runtime_pond.txt",
        f"Pond tiering: {share:.0%} of applications within the 5% CXL "
        "slowdown bound (paper: 98%)",
    )
    assert share >= 0.95
