"""Benchmark: Section VIII runtime systems (autoscaling, DVFS, Pond)."""

from repro.core.tables import render_table
from repro.perf.apps import APPLICATIONS, get_app
from repro.perf.autoscale import autoscale
from repro.perf.dvfs import frequency_sweep
from repro.perf.pond import mitigated_share

from conftest import run_once


def test_autoscaler(benchmark, save):
    result = run_once(benchmark, lambda: autoscale(get_app("Xapian")))
    save(
        "runtime_autoscale.txt",
        f"Autoscaling Xapian over 48h diurnal load: "
        f"{result.core_hour_savings:.0%} core-hours returned, "
        f"{result.slo_violation_hours} SLO-violation hours",
    )
    assert result.core_hour_savings > 0.1
    assert result.slo_violation_hours <= 2


def test_dvfs(benchmark, save):
    plans = run_once(
        benchmark, lambda: frequency_sweep(get_app("Nginx"), cores=10)
    )
    table = render_table(
        ["load QPS", "frequency", "power saving", "meets SLO"],
        [
            [f"{p.load_qps:.0f}", f"{p.frequency:.2f}",
             f"{p.power_savings:.0%}", p.meets_slo]
            for p in plans
        ],
        title="DVFS plans across load (Nginx, 10 cores)",
    )
    save("runtime_dvfs.txt", table)
    assert all(p.meets_slo for p in plans)
    assert plans[0].power_savings > plans[-1].power_savings


def test_pond_mitigation(benchmark, save):
    share = run_once(benchmark, lambda: mitigated_share(APPLICATIONS))
    save(
        "runtime_pond.txt",
        f"Pond tiering: {share:.0%} of applications within the 5% CXL "
        "slowdown bound (paper: 98%)",
    )
    assert share >= 0.95
