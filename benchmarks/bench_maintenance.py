"""Benchmark: Section V — maintenance overheads (AFR, FIP, C_OOS)."""

from repro.experiments import section5_maintenance

from conftest import run_once


def test_maintenance(benchmark, save):
    result = run_once(benchmark, section5_maintenance.run)
    save("section5_maintenance.txt", section5_maintenance.render(result))
    assert abs(result.overhead_delta) < 0.1
