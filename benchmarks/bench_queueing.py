"""Benchmark: batched M/G/c queueing grids vs the scalar oracle.

Two gates mirror the allocation-engine and trace-generator benches:

- ``test_queueing_golden_digest`` always runs (the CI smoke): it replays
  a fixed seeds × app-profiles × cv grid on the vectorized backend and
  fails on any ``SimGrid`` digest mismatch against
  ``benchmarks/golden_queueing_digests.json`` (generated from the
  ``reference`` backend; refresh with ``REPRO_UPDATE_GOLDEN=1``).
- ``test_table3_grid_speedup`` times the full Table III latency-critical
  sim grid (every app × generation × candidate core count) on both
  backends, asserts the results are bit-identical, and writes the
  machine-readable ``benchmarks/out/BENCH_queueing.json`` artifact
  (schema checked by :func:`validate_bench_queueing`).

``REPRO_BENCH_QUEUEING_REQUESTS`` scales the speedup grid's per-point
request count (default 20000) so CI can run a fast smoke.
"""

import json
import os
import pathlib
import time

import numpy as np

from repro.perf.apps import (
    get_app,
    platform_for_generation,
    table3_apps,
)
from repro.perf.latency import derive_slos
from repro.perf.queueing import saturation_qps, simulate_fcfs_batch
from repro.perf.scaling import CANDIDATE_CORES

GOLDEN_PATH = pathlib.Path(__file__).parent / "golden_queueing_digests.json"

BENCH_SCHEMA = "repro-bench-queueing/1"

#: (app, cores, load fraction) profiles for the golden-digest grid —
#: the same span as the tier-1 equivalence suite (single/multi-core,
#: short/long service times), crossed with cv below.
GOLDEN_PROFILES = (
    ("Xapian", 8, 0.7),
    ("Nginx", 4, 0.5),
    ("Moses", 2, 0.8),
    ("Img-DNN", 1, 0.6),
)

GOLDEN_SEEDS = (0, 1, 2, 3, 4)
GOLDEN_CVS = (1.0, 2.0)
GOLDEN_REQUESTS, GOLDEN_WARMUP = 4000, 500


def _speedup_requests() -> int:
    return int(os.environ.get("REPRO_BENCH_QUEUEING_REQUESTS", "20000"))


def _golden_grids():
    """Named ``simulate_fcfs_batch`` kwargs with digest-pinned outputs."""
    grids = []
    for name, cores, fraction in GOLDEN_PROFILES:
        service_ms = get_app(name).service_ms_on("gen3")
        qps = fraction * saturation_qps(cores, service_ms)
        for cv in GOLDEN_CVS:
            grids.append(
                (
                    f"{name.lower()}-c{cores}-cv{cv:g}",
                    dict(
                        offered_qps=[qps] * len(GOLDEN_SEEDS),
                        cores=cores,
                        mean_service_ms=service_ms,
                        cv=cv,
                        seeds=list(GOLDEN_SEEDS),
                        requests=GOLDEN_REQUESTS,
                        warmup=GOLDEN_WARMUP,
                        quantiles=(0.9, 0.99),
                    ),
                )
            )
    return grids


def test_queueing_golden_digest(save):
    """Vectorized ``SimGrid`` digests match the reference-backend goldens."""
    digests = {
        name: simulate_fcfs_batch(method="vectorized", **kwargs).digest()
        for name, kwargs in _golden_grids()
    }
    if os.environ.get("REPRO_UPDATE_GOLDEN", "0") not in ("", "0"):
        reference = {
            name: simulate_fcfs_batch(method="reference", **kwargs).digest()
            for name, kwargs in _golden_grids()
        }
        GOLDEN_PATH.write_text(json.dumps(reference, indent=2) + "\n")
    golden = json.loads(GOLDEN_PATH.read_text())
    assert digests == golden, (
        "vectorized SimGrid digests diverged from the reference-backend "
        "goldens"
    )
    save(
        "queueing_digests.txt",
        "\n".join(f"{name}: {digest}" for name, digest in sorted(
            digests.items()
        )),
    )


def _table3_grid():
    """SoA parameters for the full Table III latency-critical sim grid.

    For every latency-critical app × generation the sim-mode scaling
    path evaluates the SLO point (baseline platform, 8 cores) plus each
    Bergamo candidate core count at the SLO load — reproduce exactly
    that point set here, replicated over 5 seeds per cell (the
    equivalence suite's statistical axis).
    """
    apps = [app for app in table3_apps() if app.latency_critical]
    generations = (1, 2, 3)
    slos = derive_slos(apps, generations, method="analytic")
    qps, cores, svc, cv, seeds = [], [], [], [], []
    for app in apps:
        for gen in generations:
            slo = slos[(app.name, gen)]
            points = [
                (app.service_ms_on(platform_for_generation(gen)), 8)
            ] + [
                (app.service_ms_on("bergamo"), c) for c in CANDIDATE_CORES
            ]
            for service_ms, n_cores in points:
                for _ in range(5):
                    qps.append(slo.load_qps)
                    cores.append(n_cores)
                    svc.append(service_ms)
                    cv.append(app.service_cv)
                    seeds.append(len(seeds))
    return (
        np.array(qps),
        np.array(cores),
        np.array(svc),
        np.array(cv),
        np.array(seeds),
    )


def test_table3_grid_speedup(save):
    """The vectorized backend targets >= 5x over the oracle on Table III.

    The committed ``BENCH_queueing.json`` records the measured ratio
    (4-5x on the shared single-vCPU container this repo is grown on,
    where both backends pay identical RNG/percentile costs and DRAM
    bandwidth caps the batch path; the smoke-scale grid clears 5x).
    The in-test floor is softer (3x) to tolerate noisy shared runners.
    """
    qps, cores, svc, cv, seeds = _table3_grid()
    requests = _speedup_requests()
    warmup = max(requests // 10, 1)
    kwargs = dict(cv=cv, seeds=seeds, requests=requests, warmup=warmup)

    t0 = time.perf_counter()
    reference = simulate_fcfs_batch(
        qps, cores, svc, method="reference", **kwargs
    )
    reference_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    vectorized = simulate_fcfs_batch(
        qps, cores, svc, method="vectorized", **kwargs
    )
    vectorized_s = time.perf_counter() - t0

    bit_identical = vectorized.digest() == reference.digest()
    speedup = reference_s / vectorized_s
    payload = {
        "schema": BENCH_SCHEMA,
        "grid_points": len(vectorized),
        "requests": requests,
        "warmup": warmup,
        "reference_s": round(reference_s, 4),
        "vectorized_s": round(vectorized_s, 4),
        "speedup": round(speedup, 2),
        "bit_identical": bit_identical,
    }
    problems = validate_bench_queueing(payload)
    assert not problems, problems
    save("BENCH_queueing.json", json.dumps(payload, indent=2))
    assert bit_identical, (
        "vectorized Table III grid diverged from the scalar oracle"
    )
    assert speedup >= 3.0, f"queueing grid speedup {speedup:.1f}x < 3x"


def validate_bench_queueing(manifest) -> list:
    """Schema check for ``BENCH_queueing.json``; returns problem strings."""
    problems = []
    if not isinstance(manifest, dict):
        return [f"manifest is {type(manifest).__name__}, expected dict"]
    if manifest.get("schema") != BENCH_SCHEMA:
        problems.append(f"schema is {manifest.get('schema')!r}")
    for key in ("grid_points", "requests", "warmup"):
        value = manifest.get(key)
        if not isinstance(value, int) or value < 0:
            problems.append(f"{key} is {value!r}, expected int >= 0")
    for key in ("reference_s", "vectorized_s", "speedup"):
        value = manifest.get(key)
        if not isinstance(value, (int, float)) or value <= 0:
            problems.append(f"{key} is {value!r}, expected number > 0")
    if not isinstance(manifest.get("bit_identical"), bool):
        problems.append("bit_identical missing or not a bool")
    elif not manifest["bit_identical"]:
        problems.append("bit_identical is False")
    return problems
