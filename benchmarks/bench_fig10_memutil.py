"""Benchmark: Fig. 10 — per-server max memory utilization over 35 traces."""

from repro.experiments import fig10_memutil

from conftest import run_once


def test_fig10_memutil(benchmark, save, execution_stats):
    result = run_once(
        benchmark,
        lambda: fig10_memutil.run(trace_count=35, mean_concurrent_vms=250),
    )
    save("fig10_memutil.txt", fig10_memutil.render(result))
    save("fig10_memutil.csv", fig10_memutil.to_csv(result))
    save("fig10_memutil.stats.txt", execution_stats())
    assert result.share_below_60pct >= 0.9  # paper: "most traces"
    assert result.share_needing_cxl <= 0.1  # paper: ~3%
