"""Benchmark: Fig. 1 — data-center carbon breakdown."""

from repro.experiments import fig1_breakdown

from conftest import run_once


def test_fig1_breakdown(benchmark, save):
    result = run_once(benchmark, fig1_breakdown.run)
    save("fig1_breakdown.txt", fig1_breakdown.render(result))
    assert abs(result.operational_share - 0.58) < 0.05
    assert abs(result.compute_share - 0.57) < 0.05
