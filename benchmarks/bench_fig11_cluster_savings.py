"""Benchmark: Fig. 11 / Fig. 12 — cluster savings vs carbon intensity."""

import numpy as np

from repro.experiments import fig11_cluster_savings

from conftest import run_once


def test_fig11_cluster_savings(benchmark, save):
    result = run_once(
        benchmark,
        lambda: fig11_cluster_savings.run(
            mean_concurrent_vms=1000,
            intensities=np.linspace(0.0, 0.4, 9),
        ),
    )
    save("fig11_cluster_savings.txt", fig11_cluster_savings.render(result))
    save("fig11_cluster_savings.csv", fig11_cluster_savings.to_csv(result))
    # Reuse wins on clean grids; savings positive across the sweep.
    assert result.best_at(0.0) == "GreenSKU-Full"
    for point in result.points:
        assert point.best_sku()[1] > 0
